//! A compiled bytecode executor for machine-level kernels.
//!
//! The tree interpreter in [`crate::interp`] resolves every operand through an
//! `Option`-checked lookup, allocates a fresh value table per run, and updates a
//! `BTreeMap`-backed operation counter on every statement. That is fine as a
//! correctness oracle, but it dominates the runtime of the simulated GPU, where the
//! same kernel executes once per element across large batches.
//!
//! [`CompiledKernel`] moves all of that work to compile time:
//!
//! * **Register allocation** — variables are linear-scan-allocated into dense `u64`
//!   slots; a slot is recycled as soon as the last read of its variable has
//!   executed, so the scratch frame is much smaller than the variable count and is
//!   reused across batch elements with zero per-element allocation.
//! * **Static checking** — width limits and use-before-def are verified once at
//!   compile time (straight-line code makes the check exact), so the execution loop
//!   has no error paths.
//! * **Precomputed masks and counts** — destination masks are baked into each
//!   bytecode op, and the per-element [`OpCounts`] is computed once (statement
//!   counts are exact execution counts for straight-line kernels).
//!
//! The interpreter remains the semantic reference: `CompiledKernel::run` is
//! observationally identical to [`interp::run`](crate::interp::run), and the test
//! suites cross-check the two on every kernel the rewrite system produces.

use crate::cost::{static_counts, OpCounts};
use crate::interp::{InterpError, RunResult};
use crate::{Kernel, Op, Operand, VarId};

/// A bytecode operand: a register slot index.
///
/// There are no immediate operands at execution time — compile-time constants are
/// materialized into dedicated registers that [`CompiledKernel::run_with`] preloads
/// before the body runs. That keeps every instruction small (better bytecode cache
/// density) and every operand read a single indexed load.
type Src = u32;

/// A bytecode destination: a register slot plus the write mask of its type width.
#[derive(Debug, Clone, Copy)]
struct Dst {
    reg: u32,
    mask: u64,
}

/// The multi-word-shift payload, boxed so the rare variant does not inflate every
/// [`Code`] instruction.
#[derive(Debug, Clone)]
struct ShrOp {
    dsts: Vec<Dst>,
    words: Vec<Src>,
    shift: u32,
    word_bits: u32,
}

/// One bytecode instruction with fully resolved register slots.
#[derive(Debug, Clone)]
enum Code {
    Copy {
        d: Dst,
        s: Src,
    },
    AddWide {
        carry: Dst,
        sum: Dst,
        a: Src,
        b: Src,
        cin: Src,
        sum_bits: u32,
    },
    Sub {
        d: Dst,
        a: Src,
        b: Src,
        bin: Src,
    },
    MulWide {
        hi: Dst,
        lo: Dst,
        a: Src,
        b: Src,
        lo_bits: u32,
    },
    MulLow {
        d: Dst,
        a: Src,
        b: Src,
    },
    Lt {
        d: Dst,
        a: Src,
        b: Src,
    },
    Eq {
        d: Dst,
        a: Src,
        b: Src,
    },
    BoolAnd {
        d: Dst,
        a: Src,
        b: Src,
    },
    BoolOr {
        d: Dst,
        a: Src,
        b: Src,
    },
    Select {
        d: Dst,
        cond: Src,
        if_true: Src,
        if_false: Src,
    },
    ShrMulti(Box<ShrOp>),
    AddMod {
        d: Dst,
        a: Src,
        b: Src,
        q: Src,
    },
    SubMod {
        d: Dst,
        a: Src,
        b: Src,
        q: Src,
    },
    MulModBarrett {
        d: Dst,
        a: Src,
        b: Src,
        q: Src,
    },
    MulAddMod {
        d: Dst,
        a: Src,
        b: Src,
        c: Src,
        q: Src,
    },
    MacReduceMod(Box<MacReduceOp>),
}

/// The accumulation-loop payload, boxed like [`ShrOp`] so the variadic variant does
/// not inflate every [`Code`] instruction.
///
/// The reduction constants are *re-derived from the modulus at compile time* (not
/// taken from the kernel), so the division-free closing reduction below is exact —
/// `reduce_wide(t) == t mod q` — for any kernel that register-allocates, validated
/// or not. `recip == 0` is the sentinel for moduli outside the single-word Barrett
/// domain (q < 2 or wider than 60 bits); execution falls back to an exact `u128 %`
/// for those.
#[derive(Debug, Clone)]
struct MacReduceOp {
    d: Dst,
    pairs: Vec<(Src, Src)>,
    q: u64,
    mu: u64,
    mbits: u32,
    radix: u64,
    recip: u64,
}

/// Number of elements [`CompiledKernel::run_lanes`] executes in lock-step. Sized
/// so a typical fused-kernel frame (a few dozen registers × `LANE_BLOCK` lanes ×
/// 8 bytes) stays cache-resident while still amortizing instruction dispatch.
pub const LANE_BLOCK: usize = 128;

/// Reusable lane-block execution state for [`CompiledKernel::run_lanes`]: a
/// register frame holding [`LANE_BLOCK`] lanes per register (lane-major per
/// register, so each register's lanes are one contiguous run), plus the
/// multi-word shift staging buffer. Create one per worker with
/// [`CompiledKernel::block_scratch`] and reuse it across blocks.
#[derive(Debug, Clone, Default)]
pub struct BlockScratch {
    regs: Vec<u64>,
    shr: Vec<u64>,
    /// Id of the kernel whose constants currently occupy the frame (`0` = none),
    /// exactly as the per-element [`Scratch`] frame's tag.
    tag: u64,
}

/// Reusable per-worker execution state: the register frame plus the multi-word
/// shift staging buffer. Create one per thread with [`CompiledKernel::scratch`] and
/// pass it to every [`CompiledKernel::run_with`] call to amortize the allocation
/// across a whole batch.
#[derive(Debug, Clone, Default)]
pub struct Scratch {
    regs: Vec<u64>,
    shr: Vec<u64>,
    /// Id of the kernel whose constants currently occupy the frame's constant
    /// registers (`0` = none). Lets [`CompiledKernel::run_with`] skip the
    /// per-element constant preload when the same kernel reuses the frame, which
    /// matters for constant-heavy fused kernels run over large batches.
    tag: u64,
}

/// A kernel compiled to register-allocated bytecode.
///
/// # Example
///
/// ```
/// use moma_ir::{compiled::CompiledKernel, interp, KernelBuilder, Op, Ty};
///
/// let mut kb = KernelBuilder::new("addmod64");
/// let a = kb.param("a", Ty::UInt(64));
/// let b = kb.param("b", Ty::UInt(64));
/// let q = kb.param("q", Ty::UInt(64));
/// let c = kb.output("c", Ty::UInt(64));
/// kb.push(vec![c], Op::AddMod { a: a.into(), b: b.into(), q: q.into() });
/// let kernel = kb.build();
///
/// let compiled = CompiledKernel::compile(&kernel).unwrap();
/// let fast = compiled.run(&[90, 80, 100]).unwrap();
/// let slow = interp::run(&kernel, &[90, 80, 100]).unwrap();
/// assert_eq!(fast, slow);
/// ```
#[derive(Debug, Clone)]
pub struct CompiledKernel {
    name: String,
    /// Process-unique id (clones share it — they carry identical constants), used
    /// to recognize a [`Scratch`] frame whose constant registers are already
    /// loaded for this kernel.
    id: u64,
    code: Vec<Code>,
    /// Register slot and declared bit-width of each parameter, in signature order.
    params: Vec<(u32, u32)>,
    /// Parameter names, for error messages only (cold path).
    param_names: Vec<String>,
    /// Register slot of each output, in signature order.
    outputs: Vec<u32>,
    /// Materialized constants: `const_values[k]` is preloaded into register
    /// `const_base + k` before each element executes.
    const_base: usize,
    const_values: Vec<u64>,
    n_regs: usize,
    counts: OpCounts,
}

impl CompiledKernel {
    /// Compiles a machine-level kernel to bytecode.
    ///
    /// # Errors
    ///
    /// Returns [`InterpError::UnsupportedWidth`] if any variable is wider than 64
    /// bits and [`InterpError::UseBeforeDef`] if a variable is read (or an output
    /// left) before assignment — exactly the conditions under which the interpreter
    /// would fail at runtime.
    pub fn compile(kernel: &Kernel) -> Result<Self, InterpError> {
        for v in &kernel.vars {
            if v.ty.bits() > 64 {
                return Err(InterpError::UnsupportedWidth {
                    var: v.name.clone(),
                    bits: v.ty.bits(),
                });
            }
        }

        let alloc = RegAlloc::run(kernel)?;
        let slot_of = |v: VarId| alloc.slot_at_def[v.0].expect("defined vars have slots");

        // Constants are interned into registers past the allocator's frame; they
        // are preloaded once per element and never written by the body.
        let const_base = alloc.n_regs;
        let mut const_values: Vec<u64> = Vec::new();
        let mut const_map: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();

        let mut code = Vec::with_capacity(kernel.body.len());
        for (i, stmt) in kernel.body.iter().enumerate() {
            let mut src = |o: Operand| -> Src {
                match o {
                    Operand::Const(c) => *const_map.entry(c).or_insert_with(|| {
                        const_values.push(c);
                        (const_base + const_values.len() - 1) as u32
                    }),
                    Operand::Var(v) => alloc.slot_at_use[i][&v],
                }
            };
            let dst = |d: VarId| -> Dst {
                Dst {
                    reg: alloc.slot_at_write[i][&d],
                    mask: mask64(kernel.ty(d).bits()),
                }
            };
            code.push(match &stmt.op {
                Op::Copy { src: s } => Code::Copy {
                    d: dst(stmt.dsts[0]),
                    s: src(*s),
                },
                Op::AddWide { a, b, carry_in } => Code::AddWide {
                    carry: dst(stmt.dsts[0]),
                    sum: dst(stmt.dsts[1]),
                    a: src(*a),
                    b: src(*b),
                    cin: src(carry_in.unwrap_or(Operand::ZERO)),
                    sum_bits: kernel.ty(stmt.dsts[1]).bits(),
                },
                Op::Sub { a, b, borrow_in } => Code::Sub {
                    d: dst(stmt.dsts[0]),
                    a: src(*a),
                    b: src(*b),
                    bin: src(borrow_in.unwrap_or(Operand::ZERO)),
                },
                Op::MulWide { a, b } => Code::MulWide {
                    hi: dst(stmt.dsts[0]),
                    lo: dst(stmt.dsts[1]),
                    a: src(*a),
                    b: src(*b),
                    lo_bits: kernel.ty(stmt.dsts[1]).bits(),
                },
                Op::MulLow { a, b } => Code::MulLow {
                    d: dst(stmt.dsts[0]),
                    a: src(*a),
                    b: src(*b),
                },
                Op::Lt { a, b } => Code::Lt {
                    d: dst(stmt.dsts[0]),
                    a: src(*a),
                    b: src(*b),
                },
                Op::Eq { a, b } => Code::Eq {
                    d: dst(stmt.dsts[0]),
                    a: src(*a),
                    b: src(*b),
                },
                Op::BoolAnd { a, b } => Code::BoolAnd {
                    d: dst(stmt.dsts[0]),
                    a: src(*a),
                    b: src(*b),
                },
                Op::BoolOr { a, b } => Code::BoolOr {
                    d: dst(stmt.dsts[0]),
                    a: src(*a),
                    b: src(*b),
                },
                Op::Select {
                    cond,
                    if_true,
                    if_false,
                } => Code::Select {
                    d: dst(stmt.dsts[0]),
                    cond: src(*cond),
                    if_true: src(*if_true),
                    if_false: src(*if_false),
                },
                Op::ShrMulti { words, shift } => Code::ShrMulti(Box::new(ShrOp {
                    dsts: stmt.dsts.iter().map(|d| dst(*d)).collect(),
                    words: words.iter().map(|w| src(*w)).collect(),
                    shift: *shift,
                    // Matches the interpreter: the width of the first variable word
                    // (constants are typed by their use sites).
                    word_bits: words
                        .iter()
                        .find_map(|o| o.as_var().map(|v| kernel.ty(v).bits()))
                        .unwrap_or(64),
                })),
                Op::AddMod { a, b, q } => Code::AddMod {
                    d: dst(stmt.dsts[0]),
                    a: src(*a),
                    b: src(*b),
                    q: src(*q),
                },
                Op::SubMod { a, b, q } => Code::SubMod {
                    d: dst(stmt.dsts[0]),
                    a: src(*a),
                    b: src(*b),
                    q: src(*q),
                },
                Op::MulModBarrett { a, b, q, .. } => Code::MulModBarrett {
                    d: dst(stmt.dsts[0]),
                    a: src(*a),
                    b: src(*b),
                    q: src(*q),
                },
                Op::MulAddMod { a, b, c, q, .. } => Code::MulAddMod {
                    d: dst(stmt.dsts[0]),
                    a: src(*a),
                    b: src(*b),
                    c: src(*c),
                    q: src(*q),
                },
                Op::MacReduceMod { pairs, q, .. } => {
                    // Re-derive the reduction constants from the modulus rather
                    // than trusting the kernel's copies: execution stays exact
                    // (`== Σaᵢbᵢ mod q`) even for kernels that never went through
                    // the validator. recip == 0 flags moduli outside the
                    // single-word Barrett domain; exec falls back to `u128 %`.
                    let (mu, mbits, radix, recip) = barrett_constants(*q);
                    Code::MacReduceMod(Box::new(MacReduceOp {
                        d: dst(stmt.dsts[0]),
                        pairs: pairs.iter().map(|(a, b)| (src(*a), src(*b))).collect(),
                        q: *q,
                        mu,
                        mbits,
                        radix,
                        recip,
                    }))
                }
            });
        }

        Ok(CompiledKernel {
            name: kernel.name.clone(),
            id: next_kernel_id(),
            code,
            params: kernel
                .params
                .iter()
                .map(|p| (slot_of(*p), kernel.ty(*p).bits()))
                .collect(),
            param_names: kernel
                .params
                .iter()
                .map(|p| kernel.var(*p).name.clone())
                .collect(),
            outputs: alloc.output_slots,
            const_base,
            n_regs: const_base + const_values.len(),
            const_values,
            counts: static_counts(kernel),
        })
    }

    /// The kernel name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of register slots in the execution frame (after linear-scan reuse;
    /// at most the kernel's variable count).
    pub fn register_count(&self) -> usize {
        self.n_regs
    }

    /// Number of parameters expected per element.
    pub fn param_count(&self) -> usize {
        self.params.len()
    }

    /// Number of outputs produced per element.
    pub fn output_count(&self) -> usize {
        self.outputs.len()
    }

    /// The word-level operations one element executes (exact, since kernels are
    /// straight-line).
    pub fn counts_per_element(&self) -> &OpCounts {
        &self.counts
    }

    /// Creates an execution scratch frame sized for this kernel, with the
    /// materialized constants already loaded.
    pub fn scratch(&self) -> Scratch {
        let mut regs = vec![0; self.n_regs];
        regs[self.const_base..self.n_regs].copy_from_slice(&self.const_values);
        Scratch {
            regs,
            shr: Vec::new(),
            tag: self.id,
        }
    }

    /// Executes the kernel once, reusing `scratch` and appending the outputs to
    /// `out`.
    ///
    /// # Errors
    ///
    /// Returns [`InterpError::ArgumentCount`] or [`InterpError::InputTooWide`] on
    /// bad inputs (all other failure modes were ruled out at compile time).
    pub fn run_with(
        &self,
        inputs: &[u64],
        scratch: &mut Scratch,
        out: &mut Vec<u64>,
    ) -> Result<(), InterpError> {
        if inputs.len() != self.params.len() {
            return Err(InterpError::ArgumentCount {
                expected: self.params.len(),
                got: inputs.len(),
            });
        }
        // Constant registers are never written by the body, so a frame tagged
        // with this kernel's id still holds them from the previous element; only
        // a frame carried over from another kernel (or a default one) needs the
        // resize-and-preload.
        if scratch.tag != self.id {
            scratch.regs.clear();
            scratch.regs.resize(self.n_regs, 0);
            scratch.regs[self.const_base..self.n_regs].copy_from_slice(&self.const_values);
            scratch.tag = self.id;
        }
        for (idx, ((slot, bits), &input)) in self.params.iter().zip(inputs).enumerate() {
            if *bits < 64 && input >> bits != 0 {
                return Err(InterpError::InputTooWide {
                    var: self.param_names[idx].clone(),
                });
            }
            scratch.regs[*slot as usize] = input;
        }
        self.exec(scratch);
        out.extend(self.outputs.iter().map(|o| scratch.regs[*o as usize]));
        Ok(())
    }

    /// Executes the kernel once, reusing `scratch` and writing the outputs into
    /// the caller-provided slice — the allocation-free twin of
    /// [`Self::run_with`] for callers that own a flat row-major output buffer
    /// (the batch launcher writes each element's outputs straight into its
    /// row, with no per-element staging `Vec`).
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` is not exactly [`Self::output_count`] — a caller
    /// bug, like a mis-sliced output row.
    ///
    /// # Errors
    ///
    /// See [`Self::run_with`].
    pub fn run_into(
        &self,
        inputs: &[u64],
        scratch: &mut Scratch,
        out: &mut [u64],
    ) -> Result<(), InterpError> {
        assert_eq!(
            out.len(),
            self.outputs.len(),
            "output slice length must equal output_count()"
        );
        if inputs.len() != self.params.len() {
            return Err(InterpError::ArgumentCount {
                expected: self.params.len(),
                got: inputs.len(),
            });
        }
        if scratch.tag != self.id {
            scratch.regs.clear();
            scratch.regs.resize(self.n_regs, 0);
            scratch.regs[self.const_base..self.n_regs].copy_from_slice(&self.const_values);
            scratch.tag = self.id;
        }
        for (idx, ((slot, bits), &input)) in self.params.iter().zip(inputs).enumerate() {
            if *bits < 64 && input >> bits != 0 {
                return Err(InterpError::InputTooWide {
                    var: self.param_names[idx].clone(),
                });
            }
            scratch.regs[*slot as usize] = input;
        }
        self.exec(scratch);
        for (slot, o) in self.outputs.iter().zip(out) {
            *o = scratch.regs[*slot as usize];
        }
        Ok(())
    }

    /// Executes the kernel once and returns outputs plus operation counts — the
    /// drop-in equivalent of [`interp::run`](crate::interp::run).
    ///
    /// # Errors
    ///
    /// See [`Self::run_with`].
    pub fn run(&self, inputs: &[u64]) -> Result<RunResult, InterpError> {
        let mut scratch = self.scratch();
        let mut outputs = Vec::with_capacity(self.outputs.len());
        self.run_with(inputs, &mut scratch, &mut outputs)?;
        Ok(RunResult {
            outputs,
            counts: self.counts.clone(),
        })
    }

    /// Executes the kernel over a whole batch with one shared scratch frame.
    ///
    /// `inputs` is row-major: element `i`'s parameters occupy
    /// `inputs[i * param_count .. (i + 1) * param_count]`. Outputs are returned
    /// row-major in the same element order, and `counts` aggregates the operations
    /// of every element (per-element counts × batch size).
    ///
    /// # Errors
    ///
    /// Returns [`InterpError::ArgumentCount`] if `inputs.len()` is not a multiple
    /// of the parameter count, or [`InterpError::InputTooWide`] for any bad element
    /// input.
    pub fn run_batch(&self, inputs: &[u64]) -> Result<BatchRunResult, InterpError> {
        let p = self.params.len().max(1);
        if inputs.len() % p != 0 {
            return Err(InterpError::ArgumentCount {
                expected: p,
                got: inputs.len() % p,
            });
        }
        let elements = if self.params.is_empty() {
            0
        } else {
            inputs.len() / p
        };
        let mut scratch = self.scratch();
        let mut outputs = Vec::with_capacity(elements * self.outputs.len());
        for row in 0..elements {
            self.run_with(&inputs[row * p..(row + 1) * p], &mut scratch, &mut outputs)?;
        }
        Ok(BatchRunResult {
            elements,
            outputs_per_element: self.outputs.len(),
            outputs,
            counts: self.counts.scaled(elements as u64),
        })
    }

    /// Creates a reusable lane-block frame for [`Self::run_lanes`].
    pub fn block_scratch(&self) -> BlockScratch {
        let mut scratch = BlockScratch::default();
        self.preload_block(&mut scratch);
        scratch
    }

    /// Executes the kernel over `n` elements (`n ≤ LANE_BLOCK`) in lock-step
    /// lanes: every bytecode instruction runs across all `n` lanes before the
    /// next instruction dispatches, so the per-instruction dispatch (and the
    /// per-element call overhead of [`Self::run_with`]) is amortized over the
    /// whole block — the difference that makes generated fused kernels
    /// competitive with hand-written loops on wide batches.
    ///
    /// `fill(p, lanes)` must write parameter `p`'s value for each of the `n`
    /// elements into `lanes` (for row-major planes this is a contiguous row
    /// copy, not a per-element gather). `sink(j, lanes)` receives output `j`'s
    /// `n` values after execution.
    ///
    /// # Errors
    ///
    /// Returns [`InterpError::InputTooWide`] if any filled lane exceeds its
    /// parameter's declared width.
    ///
    /// # Panics
    ///
    /// Panics if `n > LANE_BLOCK`.
    pub fn run_lanes<F, S>(
        &self,
        n: usize,
        scratch: &mut BlockScratch,
        mut fill: F,
        mut sink: S,
    ) -> Result<(), InterpError>
    where
        F: FnMut(usize, &mut [u64]),
        S: FnMut(usize, &[u64]),
    {
        assert!(
            n <= LANE_BLOCK,
            "lane block holds at most {LANE_BLOCK} elements"
        );
        if scratch.tag != self.id {
            self.preload_block(scratch);
        }
        for (idx, (slot, bits)) in self.params.iter().enumerate() {
            let base = *slot as usize * LANE_BLOCK;
            let lanes = &mut scratch.regs[base..base + n];
            fill(idx, lanes);
            if *bits < 64 && lanes.iter().any(|&v| v >> bits != 0) {
                return Err(InterpError::InputTooWide {
                    var: self.param_names[idx].clone(),
                });
            }
        }
        self.exec_lanes(scratch, n);
        for (j, o) in self.outputs.iter().enumerate() {
            let base = *o as usize * LANE_BLOCK;
            sink(j, &scratch.regs[base..base + n]);
        }
        Ok(())
    }

    /// Sizes a block frame for this kernel and broadcasts the constant
    /// registers across their lanes.
    fn preload_block(&self, scratch: &mut BlockScratch) {
        scratch.regs.clear();
        scratch.regs.resize(self.n_regs * LANE_BLOCK, 0);
        for (k, &c) in self.const_values.iter().enumerate() {
            let base = (self.const_base + k) * LANE_BLOCK;
            scratch.regs[base..base + LANE_BLOCK].fill(c);
        }
        scratch.tag = self.id;
    }

    /// The lane-block twin of [`Self::exec`]: one instruction dispatch per
    /// block, a tight `0..n` lane loop per instruction. Kept in exact semantic
    /// lock-step with `exec` (same arms, same masking) — the
    /// `run_lanes_matches_per_element_run` test asserts the equivalence.
    fn exec_lanes(&self, scratch: &mut BlockScratch, n: usize) {
        const B: usize = LANE_BLOCK;
        let consts_from = self.const_base;
        let regs = &mut scratch.regs;
        // Shared accumulator lanes for `MacReduceMod` (first pair assigns, so
        // stale values between instructions are never read).
        let mut accs = [0u128; LANE_BLOCK];
        for op in &self.code {
            match op {
                Code::Copy { d, s } => {
                    let (db, sb) = (d.reg as usize * B, *s as usize * B);
                    for e in 0..n {
                        regs[db + e] = regs[sb + e] & d.mask;
                    }
                }
                Code::AddWide {
                    carry,
                    sum,
                    a,
                    b,
                    cin,
                    sum_bits,
                } => {
                    let (cb, sb) = (carry.reg as usize * B, sum.reg as usize * B);
                    let (ab, bb, ib) = (*a as usize * B, *b as usize * B, *cin as usize * B);
                    for e in 0..n {
                        let t = regs[ab + e] as u128 + regs[bb + e] as u128 + regs[ib + e] as u128;
                        regs[cb + e] = ((t >> sum_bits) as u64) & carry.mask;
                        regs[sb + e] = (t as u64) & sum.mask;
                    }
                }
                Code::Sub { d, a, b, bin } => {
                    let (db, ab, bb, ib) = (
                        d.reg as usize * B,
                        *a as usize * B,
                        *b as usize * B,
                        *bin as usize * B,
                    );
                    for e in 0..n {
                        let t = regs[ab + e]
                            .wrapping_sub(regs[bb + e])
                            .wrapping_sub(regs[ib + e]);
                        regs[db + e] = t & d.mask;
                    }
                }
                Code::MulWide {
                    hi,
                    lo,
                    a,
                    b,
                    lo_bits,
                } => {
                    let (hb, lb) = (hi.reg as usize * B, lo.reg as usize * B);
                    let (ab, bb) = (*a as usize * B, *b as usize * B);
                    for e in 0..n {
                        let p = regs[ab + e] as u128 * regs[bb + e] as u128;
                        regs[hb + e] = ((p >> lo_bits) as u64) & hi.mask;
                        regs[lb + e] = (p as u64) & lo.mask;
                    }
                }
                Code::MulLow { d, a, b } => {
                    let (db, ab, bb) = (d.reg as usize * B, *a as usize * B, *b as usize * B);
                    for e in 0..n {
                        regs[db + e] = regs[ab + e].wrapping_mul(regs[bb + e]) & d.mask;
                    }
                }
                Code::Lt { d, a, b } => {
                    let (db, ab, bb) = (d.reg as usize * B, *a as usize * B, *b as usize * B);
                    for e in 0..n {
                        regs[db + e] = (regs[ab + e] < regs[bb + e]) as u64;
                    }
                }
                Code::Eq { d, a, b } => {
                    let (db, ab, bb) = (d.reg as usize * B, *a as usize * B, *b as usize * B);
                    for e in 0..n {
                        regs[db + e] = (regs[ab + e] == regs[bb + e]) as u64;
                    }
                }
                Code::BoolAnd { d, a, b } => {
                    let (db, ab, bb) = (d.reg as usize * B, *a as usize * B, *b as usize * B);
                    for e in 0..n {
                        regs[db + e] = (regs[ab + e] != 0 && regs[bb + e] != 0) as u64;
                    }
                }
                Code::BoolOr { d, a, b } => {
                    let (db, ab, bb) = (d.reg as usize * B, *a as usize * B, *b as usize * B);
                    for e in 0..n {
                        regs[db + e] = (regs[ab + e] != 0 || regs[bb + e] != 0) as u64;
                    }
                }
                Code::Select {
                    d,
                    cond,
                    if_true,
                    if_false,
                } => {
                    let (db, cb) = (d.reg as usize * B, *cond as usize * B);
                    let (tb, fb) = (*if_true as usize * B, *if_false as usize * B);
                    for e in 0..n {
                        let v = if regs[cb + e] != 0 {
                            regs[tb + e]
                        } else {
                            regs[fb + e]
                        };
                        regs[db + e] = v & d.mask;
                    }
                }
                Code::ShrMulti(op) => {
                    // Rare in fused hot paths; stage per lane exactly as `exec`
                    // does (destinations may alias source words).
                    let word_bits = op.word_bits;
                    let nw = op.words.len();
                    let total_bits = word_bits * nw as u32;
                    for e in 0..n {
                        scratch.shr.clear();
                        for w in &op.words {
                            scratch.shr.push(regs[*w as usize * B + e]);
                        }
                        for (k, dst) in op.dsts.iter().rev().enumerate() {
                            let mut v: u64 = 0;
                            for bit in 0..word_bits {
                                let src_bit = op.shift + k as u32 * word_bits + bit;
                                if src_bit < total_bits {
                                    let word = nw as u32 - 1 - src_bit / word_bits;
                                    let b =
                                        (scratch.shr[word as usize] >> (src_bit % word_bits)) & 1;
                                    v |= b << bit;
                                }
                            }
                            regs[dst.reg as usize * B + e] = v & dst.mask;
                        }
                    }
                }
                Code::AddMod { d, a, b, q } => {
                    let (db, ab, bb, qb) = (
                        d.reg as usize * B,
                        *a as usize * B,
                        *b as usize * B,
                        *q as usize * B,
                    );
                    for e in 0..n {
                        let v =
                            (regs[ab + e] as u128 + regs[bb + e] as u128) % (regs[qb + e] as u128);
                        regs[db + e] = (v as u64) & d.mask;
                    }
                }
                Code::SubMod { d, a, b, q } => {
                    let (db, ab, bb, qb) = (
                        d.reg as usize * B,
                        *a as usize * B,
                        *b as usize * B,
                        *q as usize * B,
                    );
                    for e in 0..n {
                        let (a, b, q) = (regs[ab + e], regs[bb + e], regs[qb + e]);
                        let v = if a < b {
                            (a as u128 + q as u128 - b as u128) as u64
                        } else {
                            a - b
                        };
                        regs[db + e] = v & d.mask;
                    }
                }
                Code::MulModBarrett { d, a, b, q } => {
                    let (db, ab, bb, qb) = (
                        d.reg as usize * B,
                        *a as usize * B,
                        *b as usize * B,
                        *q as usize * B,
                    );
                    for e in 0..n {
                        let v =
                            (regs[ab + e] as u128 * regs[bb + e] as u128) % (regs[qb + e] as u128);
                        regs[db + e] = (v as u64) & d.mask;
                    }
                }
                Code::MulAddMod { d, a, b, c, q } => {
                    let (db, ab, bb) = (d.reg as usize * B, *a as usize * B, *b as usize * B);
                    let (cb, qb) = (*c as usize * B, *q as usize * B);
                    for e in 0..n {
                        let v = (regs[ab + e] as u128 * regs[bb + e] as u128
                            + regs[cb + e] as u128)
                            % (regs[qb + e] as u128);
                        regs[db + e] = (v as u64) & d.mask;
                    }
                }
                Code::MacReduceMod(op) => {
                    // Pairs outer, lanes inner: each pair's register bases are
                    // resolved once per block, and the inner multiply-accumulate
                    // zips contiguous lane slices (no per-lane indexing). A
                    // constant operand — a fused cross-basis coefficient, say —
                    // is read once as a scalar instead of streaming its
                    // broadcast lanes. The first pair *assigns*, so the
                    // accumulators need no per-instruction zeroing. Same bound
                    // argument as `exec`: the validator caps Σᵢ aᵢ·bᵢ, so they
                    // cannot wrap.
                    if op.pairs.is_empty() {
                        accs[..n].fill(0);
                    }
                    for (i, &(a, b)) in op.pairs.iter().enumerate() {
                        // Put a constant operand on the scalar side.
                        let (va, vb) = if (a as usize) >= consts_from {
                            (b, a)
                        } else {
                            (a, b)
                        };
                        let ab = va as usize * B;
                        let first = i == 0;
                        if (vb as usize) >= consts_from {
                            let bv = regs[vb as usize * B] as u128;
                            for (acc, &av) in accs[..n].iter_mut().zip(&regs[ab..ab + n]) {
                                let p = av as u128 * bv;
                                *acc = if first { p } else { *acc + p };
                            }
                        } else {
                            let bb = vb as usize * B;
                            for ((acc, &av), &bv) in accs[..n]
                                .iter_mut()
                                .zip(&regs[ab..ab + n])
                                .zip(&regs[bb..bb + n])
                            {
                                let p = av as u128 * bv as u128;
                                *acc = if first { p } else { *acc + p };
                            }
                        }
                    }
                    let db = op.d.reg as usize * B;
                    for (&acc, dst) in accs[..n].iter().zip(&mut regs[db..db + n]) {
                        let v = if op.recip != 0 {
                            reduce_wide(acc, op)
                        } else {
                            (acc % op.q as u128) as u64
                        };
                        *dst = v & op.d.mask;
                    }
                }
            }
        }
    }

    /// The bytecode execution loop: no lookups, no `Option`s, no allocation.
    fn exec(&self, scratch: &mut Scratch) {
        let regs = &mut scratch.regs;
        let rd = |regs: &[u64], s: Src| -> u64 { regs[s as usize] };
        for op in &self.code {
            match op {
                Code::Copy { d, s } => {
                    regs[d.reg as usize] = rd(regs, *s) & d.mask;
                }
                Code::AddWide {
                    carry,
                    sum,
                    a,
                    b,
                    cin,
                    sum_bits,
                } => {
                    let cin = rd(regs, *cin) as u128;
                    let t = rd(regs, *a) as u128 + rd(regs, *b) as u128 + cin;
                    regs[carry.reg as usize] = ((t >> sum_bits) as u64) & carry.mask;
                    regs[sum.reg as usize] = (t as u64) & sum.mask;
                }
                Code::Sub { d, a, b, bin } => {
                    let bin = rd(regs, *bin);
                    let t = rd(regs, *a).wrapping_sub(rd(regs, *b)).wrapping_sub(bin);
                    regs[d.reg as usize] = t & d.mask;
                }
                Code::MulWide {
                    hi,
                    lo,
                    a,
                    b,
                    lo_bits,
                } => {
                    let p = rd(regs, *a) as u128 * rd(regs, *b) as u128;
                    regs[hi.reg as usize] = ((p >> lo_bits) as u64) & hi.mask;
                    regs[lo.reg as usize] = (p as u64) & lo.mask;
                }
                Code::MulLow { d, a, b } => {
                    regs[d.reg as usize] = rd(regs, *a).wrapping_mul(rd(regs, *b)) & d.mask;
                }
                Code::Lt { d, a, b } => {
                    regs[d.reg as usize] = (rd(regs, *a) < rd(regs, *b)) as u64;
                }
                Code::Eq { d, a, b } => {
                    regs[d.reg as usize] = (rd(regs, *a) == rd(regs, *b)) as u64;
                }
                Code::BoolAnd { d, a, b } => {
                    regs[d.reg as usize] = (rd(regs, *a) != 0 && rd(regs, *b) != 0) as u64;
                }
                Code::BoolOr { d, a, b } => {
                    regs[d.reg as usize] = (rd(regs, *a) != 0 || rd(regs, *b) != 0) as u64;
                }
                Code::Select {
                    d,
                    cond,
                    if_true,
                    if_false,
                } => {
                    let v = if rd(regs, *cond) != 0 {
                        rd(regs, *if_true)
                    } else {
                        rd(regs, *if_false)
                    };
                    regs[d.reg as usize] = v & d.mask;
                }
                Code::ShrMulti(op) => {
                    // Destinations may alias source words, so stage the sources in
                    // the reusable scratch buffer first (no per-call allocation).
                    scratch.shr.clear();
                    for w in &op.words {
                        scratch.shr.push(regs[*w as usize]);
                    }
                    let src_words = &scratch.shr;
                    let n = src_words.len();
                    let word_bits = op.word_bits;
                    let total_bits = word_bits * n as u32;
                    for (k, dst) in op.dsts.iter().rev().enumerate() {
                        let mut v: u64 = 0;
                        for bit in 0..word_bits {
                            let src_bit = op.shift + k as u32 * word_bits + bit;
                            if src_bit < total_bits {
                                let word = n as u32 - 1 - src_bit / word_bits;
                                let b = (src_words[word as usize] >> (src_bit % word_bits)) & 1;
                                v |= b << bit;
                            }
                        }
                        regs[dst.reg as usize] = v & dst.mask;
                    }
                }
                Code::AddMod { d, a, b, q } => {
                    let q = rd(regs, *q) as u128;
                    let v = (rd(regs, *a) as u128 + rd(regs, *b) as u128) % q;
                    regs[d.reg as usize] = (v as u64) & d.mask;
                }
                Code::SubMod { d, a, b, q } => {
                    let q = rd(regs, *q);
                    let a = rd(regs, *a);
                    let b = rd(regs, *b);
                    let v = if a < b {
                        (a as u128 + q as u128 - b as u128) as u64
                    } else {
                        a - b
                    };
                    regs[d.reg as usize] = v & d.mask;
                }
                Code::MulModBarrett { d, a, b, q } => {
                    let q = rd(regs, *q) as u128;
                    let v = (rd(regs, *a) as u128 * rd(regs, *b) as u128) % q;
                    regs[d.reg as usize] = (v as u64) & d.mask;
                }
                Code::MulAddMod { d, a, b, c, q } => {
                    let q = rd(regs, *q) as u128;
                    // a·b + c cannot overflow u128 for word-sized operands.
                    let v =
                        (rd(regs, *a) as u128 * rd(regs, *b) as u128 + rd(regs, *c) as u128) % q;
                    regs[d.reg as usize] = (v as u64) & d.mask;
                }
                Code::MacReduceMod(op) => {
                    // The validator bounds Σᵢ aᵢ·bᵢ by the operand widths, so the
                    // accumulator cannot wrap; one reduction closes the loop.
                    let mut acc: u128 = 0;
                    for (a, b) in &op.pairs {
                        acc += rd(regs, *a) as u128 * rd(regs, *b) as u128;
                    }
                    let v = if op.recip != 0 {
                        reduce_wide(acc, op)
                    } else {
                        (acc % op.q as u128) as u64
                    };
                    regs[op.d.reg as usize] = v & op.d.mask;
                }
            }
        }
    }
}

/// Hands out process-unique kernel ids, starting at 1 so the `Default` scratch tag
/// (`0`) never matches a kernel.
fn next_kernel_id() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// Derives the single-word Barrett constants for `q`, exactly as
/// `moma_mp::SingleBarrett::new` does: `mu = ⌊2^(2·mbits+3)/q⌋`,
/// `radix = 2^64 mod q`, `recip = ⌊2^64/q⌋`. Returns `recip == 0` when `q` is
/// outside the domain (q < 2 or wider than 60 bits), signalling the `%` fallback.
fn barrett_constants(q: u64) -> (u64, u32, u64, u64) {
    let mbits = 64 - q.leading_zeros();
    if q < 2 || mbits > 60 {
        return (0, mbits, 0, 0);
    }
    let q = q as u128;
    let mu = ((1u128 << (2 * mbits + 3)) / q) as u64;
    let radix = ((1u128 << 64) % q) as u64;
    let recip = ((1u128 << 64) / q) as u64;
    (mu, mbits, radix, recip)
}

/// `x mod q` via the precomputed word reciprocal — two multiplications and a
/// conditional subtraction (`SingleBarrett::reduce_word`).
#[inline]
fn reduce_word(x: u64, q: u64, recip: u64) -> u64 {
    let qhat = ((x as u128 * recip as u128) >> 64) as u64;
    let r = x.wrapping_sub(qhat.wrapping_mul(q));
    if r >= q {
        r - q
    } else {
        r
    }
}

/// `a·b mod q` for `a, b < q` via the Barrett constants (`SingleBarrett::mul_mod`).
#[inline]
fn barrett_mul_mod(a: u64, b: u64, q: u64, mu: u64, mbits: u32) -> u64 {
    let t = a as u128 * b as u128;
    let r = ((t >> (mbits - 2)) * mu as u128) >> (mbits + 5);
    let mut c = t - r * q as u128;
    if c >= q as u128 {
        c -= q as u128;
    }
    c as u64
}

/// `t mod q` for a 128-bit accumulator: fold the high word through
/// `radix = 2^64 mod q`, reduce both halves word-wise, and combine
/// (`SingleBarrett::reduce_wide`). Exact — the moma-mp test suite asserts this
/// identity against `%` for the same constant derivations.
#[inline]
fn reduce_wide(t: u128, op: &MacReduceOp) -> u64 {
    let hi = (t >> 64) as u64;
    let lo = reduce_word(t as u64, op.q, op.recip);
    if hi == 0 {
        return lo;
    }
    let folded = barrett_mul_mod(
        reduce_word(hi, op.q, op.recip),
        op.radix,
        op.q,
        op.mu,
        op.mbits,
    );
    let s = folded + lo;
    if s >= op.q {
        s - op.q
    } else {
        s
    }
}

/// Result of one batched execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchRunResult {
    /// Number of elements executed.
    pub elements: usize,
    /// Outputs per element (the kernel's output arity).
    pub outputs_per_element: usize,
    /// Row-major outputs: element `i`'s outputs occupy
    /// `outputs[i * outputs_per_element .. (i + 1) * outputs_per_element]`.
    pub outputs: Vec<u64>,
    /// Total operations executed across the batch.
    pub counts: OpCounts,
}

impl BatchRunResult {
    /// The outputs of element `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.elements`.
    pub fn element(&self, i: usize) -> &[u64] {
        let w = self.outputs_per_element;
        &self.outputs[i * w..(i + 1) * w]
    }
}

fn mask64(bits: u32) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

/// Linear-scan register allocation over a straight-line kernel.
///
/// Walks the body once, assigning each live variable a dense slot and recycling a
/// slot as soon as its variable's last read has executed. Because the code is
/// straight-line, liveness is exact: a variable is live from its (re)definition to
/// its final read (outputs are live to the end).
struct RegAlloc {
    /// Slot each variable holds at its defining write (for parameters: at entry).
    slot_at_def: Vec<Option<u32>>,
    /// Per-statement read map: variable → slot at that statement.
    slot_at_use: Vec<std::collections::HashMap<VarId, u32>>,
    /// Per-statement write map: variable → slot assigned for that write.
    slot_at_write: Vec<std::collections::HashMap<VarId, u32>>,
    output_slots: Vec<u32>,
    n_regs: usize,
}

impl RegAlloc {
    fn run(kernel: &Kernel) -> Result<RegAlloc, InterpError> {
        use std::collections::HashMap;

        // Last statement index that reads each variable (outputs never expire).
        let mut last_read: Vec<Option<usize>> = vec![None; kernel.vars.len()];
        for (i, stmt) in kernel.body.iter().enumerate() {
            for o in stmt.op.operands() {
                if let Some(v) = o.as_var() {
                    last_read[v.0] = Some(i);
                }
            }
        }
        let is_output: Vec<bool> = {
            let mut f = vec![false; kernel.vars.len()];
            for o in &kernel.outputs {
                f[o.0] = true;
            }
            f
        };

        let mut current: Vec<Option<u32>> = vec![None; kernel.vars.len()];
        let mut slot_at_def: Vec<Option<u32>> = vec![None; kernel.vars.len()];
        let mut free: Vec<u32> = Vec::new();
        let mut n_regs: u32 = 0;
        let mut allocate = |free: &mut Vec<u32>| -> u32 {
            free.pop().unwrap_or_else(|| {
                n_regs += 1;
                n_regs - 1
            })
        };

        for p in &kernel.params {
            let slot = allocate(&mut free);
            current[p.0] = Some(slot);
            slot_at_def[p.0] = Some(slot);
        }

        let mut slot_at_use = Vec::with_capacity(kernel.body.len());
        let mut slot_at_write = Vec::with_capacity(kernel.body.len());
        for (i, stmt) in kernel.body.iter().enumerate() {
            let mut uses = HashMap::new();
            for o in stmt.op.operands() {
                if let Some(v) = o.as_var() {
                    let slot = current[v.0].ok_or_else(|| InterpError::UseBeforeDef {
                        var: kernel.var(v).name.clone(),
                    })?;
                    uses.insert(v, slot);
                }
            }
            // Expire operands whose last read is this statement *before* assigning
            // destination slots — but only release slots that none of this
            // statement's destinations are about to keep (a destination may be the
            // same variable as an operand).
            for (&v, &slot) in &uses {
                if last_read[v.0] == Some(i) && !is_output[v.0] && !stmt.dsts.contains(&v) {
                    current[v.0] = None;
                    free.push(slot);
                }
            }
            let mut writes = HashMap::new();
            for d in &stmt.dsts {
                let slot = match current[d.0] {
                    Some(slot) => slot,
                    None => {
                        let slot = allocate(&mut free);
                        current[d.0] = Some(slot);
                        if slot_at_def[d.0].is_none() {
                            slot_at_def[d.0] = Some(slot);
                        }
                        slot
                    }
                };
                writes.insert(*d, slot);
                // A destination that is never read and is not an output dies
                // immediately; keep its slot live through this statement (the write
                // still happens) and recycle it afterwards.
                if !is_output[d.0] && last_read[d.0].map_or(true, |l| l <= i) {
                    current[d.0] = None;
                    free.push(slot);
                }
            }
            slot_at_use.push(uses);
            slot_at_write.push(writes);
        }

        let mut output_slots = Vec::with_capacity(kernel.outputs.len());
        for o in &kernel.outputs {
            let slot = current[o.0].ok_or_else(|| InterpError::UseBeforeDef {
                var: kernel.var(*o).name.clone(),
            })?;
            output_slots.push(slot);
        }

        Ok(RegAlloc {
            slot_at_def,
            slot_at_use,
            slot_at_write,
            output_slots,
            n_regs: n_regs as usize,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{interp, KernelBuilder, Ty};

    fn modops_kernel() -> Kernel {
        let mut kb = KernelBuilder::new("modops");
        let a = kb.param("a", Ty::UInt(64));
        let b = kb.param("b", Ty::UInt(64));
        let q = kb.param("q", Ty::UInt(64));
        let s = kb.output("s", Ty::UInt(64));
        let d = kb.output("d", Ty::UInt(64));
        let p = kb.output("p", Ty::UInt(64));
        kb.push(
            vec![s],
            Op::AddMod {
                a: a.into(),
                b: b.into(),
                q: q.into(),
            },
        );
        kb.push(
            vec![d],
            Op::SubMod {
                a: a.into(),
                b: b.into(),
                q: q.into(),
            },
        );
        kb.push(
            vec![p],
            Op::MulModBarrett {
                a: a.into(),
                b: b.into(),
                q: q.into(),
                mu: Operand::Const(0),
                mbits: 7,
            },
        );
        kb.build()
    }

    #[test]
    fn matches_interpreter_on_modops() {
        let k = modops_kernel();
        let c = CompiledKernel::compile(&k).unwrap();
        for inputs in [[90u64, 95, 101], [0, 0, 7], [100, 3, 101]] {
            assert_eq!(c.run(&inputs).unwrap(), interp::run(&k, &inputs).unwrap());
        }
    }

    #[test]
    fn muladdmod_matches_interpreter_and_chains() {
        // A two-step multiply-accumulate chain: acc = (a·c0) mod q, then
        // out = (b·c1 + acc) mod q — the shape of the generated base-extension
        // kernels, with the constants interned into preloaded registers.
        let mut kb = KernelBuilder::new("mac_chain");
        let a = kb.param("a", Ty::UInt(64));
        let b = kb.param("b", Ty::UInt(64));
        let acc = kb.local("acc", Ty::UInt(64));
        let out = kb.output("out", Ty::UInt(64));
        let q = 101u64;
        kb.push(
            vec![acc],
            Op::MulAddMod {
                a: a.into(),
                b: Operand::Const(7),
                c: Operand::Const(0),
                q: Operand::Const(q),
                mu: Operand::Const(0),
                mbits: 7,
            },
        );
        kb.push(
            vec![out],
            Op::MulAddMod {
                a: b.into(),
                b: Operand::Const(13),
                c: acc.into(),
                q: Operand::Const(q),
                mu: Operand::Const(0),
                mbits: 7,
            },
        );
        let k = kb.build();
        let c = CompiledKernel::compile(&k).unwrap();
        for inputs in [[0u64, 0], [100, 100], [u64::MAX, u64::MAX], [17, 91]] {
            let fast = c.run(&inputs).unwrap();
            assert_eq!(fast, interp::run(&k, &inputs).unwrap());
            let expected =
                ((inputs[1] as u128 * 13 + (inputs[0] as u128 * 7) % q as u128) % q as u128) as u64;
            assert_eq!(fast.outputs, vec![expected]);
        }
        assert_eq!(c.run(&[1, 1]).unwrap().counts.get("macmod"), 2);
    }

    #[test]
    fn macreduce_matches_interpreter_across_wide_accumulators() {
        // Three-term accumulation over 56-bit operands: the u128 accumulator
        // exceeds 2^64, exercising the radix-fold path of the division-free
        // reduction. The constants in the op are deliberately garbage — compile()
        // re-derives them from q, so execution must still equal Σaᵢbᵢ mod q.
        let q = (1u64 << 52) - 47;
        let mut kb = KernelBuilder::new("macreduce3");
        let a = kb.param("a", Ty::UInt(56));
        let b = kb.param("b", Ty::UInt(56));
        let out = kb.output("out", Ty::UInt(64));
        kb.push(
            vec![out],
            Op::MacReduceMod {
                pairs: vec![
                    (a.into(), b.into()),
                    (a.into(), Operand::Const(7)),
                    (b.into(), b.into()),
                ],
                q,
                mu: 1,
                mbits: 52,
                radix: 2,
                recip: 3,
            },
        );
        let k = kb.build();
        let c = CompiledKernel::compile(&k).unwrap();
        let m = (1u64 << 56) - 1;
        for inputs in [[0u64, 0], [m, m], [m, 1], [12345, 987654321]] {
            let fast = c.run(&inputs).unwrap();
            assert_eq!(fast, interp::run(&k, &inputs).unwrap());
            let (a, b) = (inputs[0] as u128, inputs[1] as u128);
            let expected = ((a * b + a * 7 + b * b) % q as u128) as u64;
            assert_eq!(fast.outputs, vec![expected]);
        }
        let counts = c.run(&[1, 1]).unwrap().counts;
        assert_eq!(counts.get("macreduce"), 3);
        assert_eq!(counts.get("reducewide"), 1);
    }

    #[test]
    fn run_lanes_matches_per_element_run() {
        // The lane-block executor must be element-wise identical to the
        // per-element path, including the constant-operand scalar fast path
        // in `MacReduceMod` (the `Const(7)` / `Const(11)` pairs below) and
        // partial trailing blocks. One scratch frame is reused across block
        // sizes to exercise the preload tag as well.
        let q = (1u64 << 52) - 47;
        let mut kb = KernelBuilder::new("lanes_mix");
        let a = kb.param("a", Ty::UInt(52));
        let b = kb.param("b", Ty::UInt(52));
        let t = kb.local("t", Ty::UInt(64));
        let s = kb.output("s", Ty::UInt(64));
        let out = kb.output("out", Ty::UInt(64));
        kb.push(
            vec![t],
            Op::MacReduceMod {
                pairs: vec![(a.into(), b.into()), (a.into(), Operand::Const(7))],
                q,
                mu: 1,
                mbits: 52,
                radix: 2,
                recip: 3,
            },
        );
        kb.push(
            vec![s],
            Op::AddMod {
                a: t.into(),
                b: b.into(),
                q: Operand::Const(q),
            },
        );
        kb.push(
            vec![out],
            Op::MacReduceMod {
                pairs: vec![(t.into(), Operand::Const(11)), (s.into(), s.into())],
                q,
                mu: 1,
                mbits: 52,
                radix: 2,
                recip: 3,
            },
        );
        let k = kb.build();
        let c = CompiledKernel::compile(&k).unwrap();
        let vals = |seed: u64, n: usize| -> Vec<u64> {
            let mut x = seed;
            (0..n)
                .map(|_| {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    x % q
                })
                .collect()
        };
        let mut scratch = c.block_scratch();
        for n in [1usize, 37, LANE_BLOCK] {
            let a_vals = vals(0x9e37 ^ n as u64, n);
            let b_vals = vals(0x79b9 ^ n as u64, n);
            let mut got = vec![Vec::new(); 2];
            c.run_lanes(
                n,
                &mut scratch,
                |p, lanes| {
                    let src = if p == 0 { &a_vals } else { &b_vals };
                    lanes.copy_from_slice(&src[..lanes.len()]);
                },
                |j, lanes| got[j] = lanes.to_vec(),
            )
            .unwrap();
            for e in 0..n {
                let one = c.run(&[a_vals[e], b_vals[e]]).unwrap();
                assert_eq!(
                    vec![got[0][e], got[1][e]],
                    one.outputs,
                    "element {e} of block {n}"
                );
            }
        }
    }

    #[test]
    fn macreduce_falls_back_to_exact_division_for_wide_moduli() {
        // mbits > 60 is outside the single-word Barrett domain; the compiled
        // executor must fall back to `%` and still match the interpreter.
        let q = u64::MAX - 58;
        let mut kb = KernelBuilder::new("macreduce_wideq");
        let a = kb.param("a", Ty::UInt(64));
        let out = kb.output("out", Ty::UInt(64));
        kb.push(
            vec![out],
            Op::MacReduceMod {
                pairs: vec![(a.into(), Operand::Const(3))],
                q,
                mu: 0,
                mbits: 64,
                radix: 0,
                recip: 0,
            },
        );
        let k = kb.build();
        let c = CompiledKernel::compile(&k).unwrap();
        for a in [0u64, 1, q - 1, u64::MAX] {
            let fast = c.run(&[a]).unwrap();
            assert_eq!(fast, interp::run(&k, &[a]).unwrap());
            assert_eq!(fast.outputs, vec![((a as u128 * 3) % q as u128) as u64]);
        }
    }

    #[test]
    fn scratch_tag_skips_stale_constant_reload_only_for_same_kernel() {
        // A scratch frame carried from kernel A to kernel B must be refilled with
        // B's constants (different id), while reuse under one kernel keeps them.
        let build = |name: &str, k: u64| {
            let mut kb = KernelBuilder::new(name);
            let a = kb.param("a", Ty::UInt(64));
            let o = kb.output("o", Ty::UInt(64));
            kb.push(
                vec![o],
                Op::MulLow {
                    a: a.into(),
                    b: Operand::Const(k),
                },
            );
            CompiledKernel::compile(&kb.build()).unwrap()
        };
        let k3 = build("times3", 3);
        let k5 = build("times5", 5);
        let mut scratch = k3.scratch();
        let mut out = Vec::new();
        k3.run_with(&[10], &mut scratch, &mut out).unwrap();
        k5.run_with(&[10], &mut scratch, &mut out).unwrap();
        k3.run_with(&[11], &mut scratch, &mut out).unwrap();
        assert_eq!(out, vec![30, 50, 33]);
    }

    #[test]
    fn add_with_carry_and_flag_masking() {
        let mut kb = KernelBuilder::new("add64");
        let a = kb.param("a", Ty::UInt(64));
        let b = kb.param("b", Ty::UInt(64));
        let carry = kb.output("carry", Ty::Flag);
        let sum = kb.output("sum", Ty::UInt(64));
        kb.push(
            vec![carry, sum],
            Op::AddWide {
                a: a.into(),
                b: b.into(),
                carry_in: None,
            },
        );
        let k = kb.build();
        let c = CompiledKernel::compile(&k).unwrap();
        assert_eq!(c.run(&[u64::MAX, 1]).unwrap().outputs, vec![1, 0]);
        assert_eq!(c.run(&[2, 3]).unwrap().outputs, vec![0, 5]);
        assert_eq!(c.run(&[2, 3]).unwrap().counts.total(), 1);
    }

    #[test]
    fn shr_multi_with_aliased_destinations() {
        // dsts == words: the staging buffer must prevent read-after-write hazards.
        let mut kb = KernelBuilder::new("shr_alias");
        let hi = kb.param("hi", Ty::UInt(64));
        let lo = kb.param("lo", Ty::UInt(64));
        let out_hi = kb.output("out_hi", Ty::UInt(64));
        let out_lo = kb.output("out_lo", Ty::UInt(64));
        kb.push(
            vec![out_hi, out_lo],
            Op::ShrMulti {
                words: vec![hi.into(), lo.into()],
                shift: 100,
            },
        );
        let k = kb.build();
        let c = CompiledKernel::compile(&k).unwrap();
        let (h, l) = (0x1234_5678_9abc_def0u64, 0x0fed_cba9_8765_4321u64);
        assert_eq!(c.run(&[h, l]).unwrap(), interp::run(&k, &[h, l]).unwrap());
    }

    #[test]
    fn register_reuse_shrinks_the_frame() {
        // A long chain of temporaries: t1 = a+b; t2 = t1+b; ... each ti dies as
        // soon as t(i+1) is computed, so the frame stays small.
        let mut kb = KernelBuilder::new("chain");
        let a = kb.param("a", Ty::UInt(64));
        let b = kb.param("b", Ty::UInt(64));
        let mut prev = a;
        for i in 0..32 {
            let f = kb.fresh(&format!("c{i}"), Ty::Flag);
            let t = kb.fresh(&format!("t{i}"), Ty::UInt(64));
            kb.push(
                vec![f, t],
                Op::AddWide {
                    a: prev.into(),
                    b: b.into(),
                    carry_in: None,
                },
            );
            prev = t;
        }
        let o = kb.output("o", Ty::UInt(64));
        kb.push(vec![o], Op::Copy { src: prev.into() });
        let k = kb.build();
        let c = CompiledKernel::compile(&k).unwrap();
        assert!(
            c.register_count() < k.vars.len() / 4,
            "expected heavy slot reuse: {} regs for {} vars",
            c.register_count(),
            k.vars.len()
        );
        assert_eq!(c.run(&[5, 3]).unwrap(), interp::run(&k, &[5, 3]).unwrap());
    }

    #[test]
    fn batch_matches_per_element_runs() {
        let k = modops_kernel();
        let c = CompiledKernel::compile(&k).unwrap();
        let rows: Vec<[u64; 3]> = (0..50).map(|i| [i * 7 % 101, i * 13 % 101, 101]).collect();
        let flat: Vec<u64> = rows.iter().flatten().copied().collect();
        let batch = c.run_batch(&flat).unwrap();
        assert_eq!(batch.elements, 50);
        let mut total = OpCounts::new();
        for (i, row) in rows.iter().enumerate() {
            let single = interp::run(&k, row).unwrap();
            assert_eq!(batch.element(i), &single.outputs[..]);
            total = total + single.counts;
        }
        assert_eq!(batch.counts, total);
    }

    #[test]
    fn error_cases_mirror_the_interpreter() {
        let k = modops_kernel();
        let c = CompiledKernel::compile(&k).unwrap();
        assert!(matches!(
            c.run(&[1]),
            Err(InterpError::ArgumentCount {
                expected: 3,
                got: 1
            })
        ));
        assert!(matches!(
            c.run_batch(&[1, 2, 3, 4]),
            Err(InterpError::ArgumentCount { .. })
        ));

        let mut kb = KernelBuilder::new("wide");
        let a = kb.param("a", Ty::UInt(128));
        let o = kb.output("o", Ty::UInt(128));
        kb.push(vec![o], Op::Copy { src: a.into() });
        assert!(matches!(
            CompiledKernel::compile(&kb.build()),
            Err(InterpError::UnsupportedWidth { .. })
        ));

        let mut kb = KernelBuilder::new("narrow");
        let a = kb.param("a", Ty::UInt(8));
        let o = kb.output("o", Ty::UInt(8));
        kb.push(vec![o], Op::Copy { src: a.into() });
        let c = CompiledKernel::compile(&kb.build()).unwrap();
        assert_eq!(c.run(&[200]).unwrap().outputs, vec![200]);
        assert!(matches!(
            c.run(&[300]),
            Err(InterpError::InputTooWide { .. })
        ));
    }

    #[test]
    fn use_before_def_is_a_compile_error() {
        let mut kb = KernelBuilder::new("ubd");
        let _a = kb.param("a", Ty::UInt(64));
        let t = kb.local("t", Ty::UInt(64));
        let o = kb.output("o", Ty::UInt(64));
        kb.push(vec![o], Op::Copy { src: t.into() });
        assert!(matches!(
            CompiledKernel::compile(&kb.build()),
            Err(InterpError::UseBeforeDef { .. })
        ));
    }

    #[test]
    fn undefined_output_is_a_compile_error() {
        let mut kb = KernelBuilder::new("noout");
        let a = kb.param("a", Ty::UInt(64));
        let t = kb.local("t", Ty::UInt(64));
        let _o = kb.output("o", Ty::UInt(64));
        kb.push(vec![t], Op::Copy { src: a.into() });
        assert!(matches!(
            CompiledKernel::compile(&kb.build()),
            Err(InterpError::UseBeforeDef { .. })
        ));
    }
}
