//! The core rewrite rules of the paper's Table 1, as reportable metadata.
//!
//! The executable implementation of each rule lives in [`crate::expand`] and
//! [`crate::split`]; this module carries the human-readable form so that the benchmark
//! harness can regenerate Table 1 (`reproduce --table 1`) and so that tests can assert
//! a one-to-one correspondence between the table and the implementation.

/// One rewrite rule of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleDescription {
    /// The equation number used in the paper (19–29).
    pub number: u32,
    /// Left-hand side (the pattern over data types).
    pub lhs: &'static str,
    /// Right-hand side (the equivalent computation over halved data types).
    pub rhs: &'static str,
    /// Where the rule is implemented in this crate.
    pub implemented_in: &'static str,
}

/// The core rewrite rules (Table 1).
pub const CORE_RULES: [RuleDescription; 11] = [
    RuleDescription {
        number: 19,
        lhs: "a^{2w}",
        rhs: "[a0^w, a1^w]",
        implemented_in: "split::split_once (variable table rebuild)",
    },
    RuleDescription {
        number: 20,
        lhs: "c0^w = floor([a0^w, a1^w] / 2^w)",
        rhs: "c0^w = a0^w",
        implemented_in: "split::Splitter::split_operand (high half selection)",
    },
    RuleDescription {
        number: 21,
        lhs: "c0^w = [a0^w, a1^w] mod 2^w",
        rhs: "c0^w = a1^w",
        implemented_in: "split::Splitter::split_operand (low half selection)",
    },
    RuleDescription {
        number: 22,
        lhs: "[c0^1, c1^w, c2^w] = [a0^w, a1^w] + [b0^w, b1^w]",
        rhs: "[d0^1, c2^w] = a1 + b1;  [c0^1, c1^w] = d0 + a0 + b0",
        implemented_in: "split::Splitter::rewrite_wide_stmt (AddWide)",
    },
    RuleDescription {
        number: 23,
        lhs: "[c0^1, c1^w] = a1^w + b1^w",
        rhs: "c0 = floor((a1 + b1)/2^w);  c1 = (a1 + b1) mod 2^w",
        implemented_in: "moma_ir::Op::AddWide (carry/sum destinations)",
    },
    RuleDescription {
        number: 24,
        lhs: "[c0^w, c1^w] = [a0^1, a1^w, a2^w] mod [q0^w, q1^w]",
        rhs: "d0 = q < [a1,a2];  d1 = (0 < a0) or (a0 =? 0 and d0);  [b0,b1] = [a1,a2] - q;  c = d1 ? [b0,b1] : [a1,a2]",
        implemented_in: "expand::expand_addmod (with a >= correction)",
    },
    RuleDescription {
        number: 25,
        lhs: "[c0^w, c1^w] = [a0^w, a1^w] - [b0^w, b1^w]",
        rhs: "c1 = a1 - b1;  d0 = a1 < b1;  c0 = a0 - b0 - d0",
        implemented_in: "split::Splitter::rewrite_wide_stmt (Sub)",
    },
    RuleDescription {
        number: 26,
        lhs: "d0^1 = [a0^w, a1^w] < [b0^w, b1^w]",
        rhs: "d0 = (a0 < b0) or ((a0 =? b0) and (a1 < b1))",
        implemented_in: "split::Splitter::emit_lt",
    },
    RuleDescription {
        number: 27,
        lhs: "d0^1 = [a0^w, a1^w] =? [b0^w, b1^w]",
        rhs: "(a0 =? b0) and (a1 =? b1)",
        implemented_in: "split::Splitter::rewrite_wide_stmt (Eq)",
    },
    RuleDescription {
        number: 28,
        lhs: "[c0^w, c1^w, c2^w, c3^w] = [a0^w, a1^w] * [b0^w, b1^w]",
        rhs: "[d0,d1] = a1*b1;  [e0,e1] = a0*b0;  [f0,f1] = a0*b1;  [g0,g1] = a1*b0;  [h0,h1,h2] = f + g;  c = [e0,e1,d0,d1] + [h0,h1,h2,0]",
        implemented_in: "split::Splitter::emit_mul_schoolbook",
    },
    RuleDescription {
        number: 29,
        lhs: "[c0^w..c3^w] = [a0^w..a3^w] + [b0^w..b3^w]",
        rhs: "carry chain of four w-bit additions, least significant first",
        implemented_in: "split::Splitter::emit_mul_schoolbook (accumulation)",
    },
];

/// Additional rules the paper describes in prose (§4 "the remaining rules are omitted"):
/// Barrett modular multiplication, Karatsuba multiplication, the multi-word constant
/// shift, and zero pruning for non-power-of-two widths.
pub const EXTENDED_RULES: [RuleDescription; 4] = [
    RuleDescription {
        number: 100,
        lhs: "c^w = (a^w * b^w) mod q^w (Barrett, mu precomputed)",
        rhs: "t = a*b;  r = ((t >> (m-2)) * mu) >> (m+5);  c = t - r*q;  if c >= q then c -= q",
        implemented_in: "expand::expand_mulmod",
    },
    RuleDescription {
        number: 101,
        lhs: "[c0..c3] = [a0,a1] * [b0,b1] (Karatsuba)",
        rhs:
            "z0 = a1*b1;  z2 = a0*b0;  z1 = (a0+a1)(b0+b1) - z0 - z2;  c = z2*2^(2w) + z1*2^w + z0",
        implemented_in: "split::Splitter::emit_mul_karatsuba",
    },
    RuleDescription {
        number: 102,
        lhs: "[c...] = [a...] >> k (k a compile-time constant)",
        rhs: "per-word shifts and ors, concretized only at machine word width",
        implemented_in: "moma_ir::Op::ShrMulti + emitters",
    },
    RuleDescription {
        number: 103,
        lhs: "x^λ with ω < λ < 2ω (non-power-of-two width)",
        rhs: "x = [0, ..., 0, x0, ..., xk-1]; operations on the zero words are pruned",
        implemented_in: "passes::prune_known_zeros + passes::optimize",
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_one_is_complete() {
        let numbers: Vec<u32> = CORE_RULES.iter().map(|r| r.number).collect();
        assert_eq!(numbers, (19..=29).collect::<Vec<u32>>());
    }

    #[test]
    fn every_rule_names_its_implementation() {
        for rule in CORE_RULES.iter().chain(EXTENDED_RULES.iter()) {
            assert!(!rule.lhs.is_empty());
            assert!(!rule.rhs.is_empty());
            assert!(
                rule.implemented_in.contains("::"),
                "rule {} should point at a module path",
                rule.number
            );
        }
    }
}
