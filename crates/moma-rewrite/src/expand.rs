//! Expansion of high-level modular operations into mid-level word algebra.
//!
//! This is the first rewriting stage: `AddMod`, `SubMod`, and `MulModBarrett` at their
//! native width `W` are rewritten into the sequences of widening additions,
//! subtractions, widening multiplications, comparisons, constant shifts, and conditional
//! selects that the paper's Listings 1–4 use. The resulting kernel still contains
//! `W`-wide values; the [`crate::split`] stage then recurses over the data types.
//!
//! One deliberate deviation from the paper: Equation (2) and Listing 1 perform the
//! conditional subtraction when `(a + b) > q`, which leaves the unreduced value `q`
//! when `a + b == q`. We subtract on `>=` instead so that results always land in
//! `[0, q)`; this costs one extra equality comparison per modular addition and is
//! required for the generated code to agree bit-for-bit with the arbitrary-precision
//! oracle.

use moma_ir::{Kernel, Op, Operand, Stmt, Ty, Var, VarId};

/// Creates a new local variable in an existing kernel.
pub(crate) fn fresh(kernel: &mut Kernel, prefix: &str, ty: Ty) -> VarId {
    let id = VarId(kernel.vars.len());
    kernel.vars.push(Var {
        name: format!("{prefix}{}", kernel.vars.len()),
        ty,
    });
    id
}

/// Expands every high-level modular operation in the kernel.
///
/// Statements that are already mid-level are kept unchanged. The output contains no
/// `AddMod`, `SubMod`, `MulModBarrett`, or `MulAddMod` statements.
pub fn expand_modular_ops(kernel: &Kernel) -> Kernel {
    let mut out = kernel.clone();
    let body = std::mem::take(&mut out.body);
    let mut new_body = Vec::with_capacity(body.len() * 8);
    for stmt in body {
        match &stmt.op {
            Op::AddMod { a, b, q } => {
                expand_addmod(&mut out, &mut new_body, stmt.dsts[0], *a, *b, *q, &stmt);
            }
            Op::SubMod { a, b, q } => {
                expand_submod(&mut out, &mut new_body, stmt.dsts[0], *a, *b, *q, &stmt);
            }
            Op::MulModBarrett { a, b, q, mu, mbits } => {
                expand_mulmod(
                    &mut out,
                    &mut new_body,
                    stmt.dsts[0],
                    *a,
                    *b,
                    *q,
                    *mu,
                    *mbits,
                    &stmt,
                );
            }
            Op::MulAddMod {
                a,
                b,
                c,
                q,
                mu,
                mbits,
            } => {
                // Fused multiply-accumulate: expand as the product into a fresh
                // temporary followed by the modular addition of the accumulator.
                let w = width_of(&out, stmt.dsts[0]);
                let prod = fresh(&mut out, "macprod", w);
                expand_mulmod(
                    &mut out,
                    &mut new_body,
                    prod,
                    *a,
                    *b,
                    *q,
                    *mu,
                    *mbits,
                    &stmt,
                );
                expand_addmod(
                    &mut out,
                    &mut new_body,
                    stmt.dsts[0],
                    prod.into(),
                    *c,
                    *q,
                    &stmt,
                );
            }
            _ => new_body.push(stmt),
        }
    }
    out.body = new_body;
    out
}

fn width_of(kernel: &Kernel, dst: VarId) -> Ty {
    kernel.ty(dst)
}

fn comment(src: &Stmt, text: &str) -> Option<String> {
    src.comment
        .as_ref()
        .map(|c| format!("{c}: {text}"))
        .or_else(|| Some(text.to_string()))
}

/// `c = (a + b) mod q`  →  Listing 2's `_daddmod` structure at width `W`.
fn expand_addmod(
    kernel: &mut Kernel,
    body: &mut Vec<Stmt>,
    c: VarId,
    a: Operand,
    b: Operand,
    q: Operand,
    src: &Stmt,
) {
    let w = width_of(kernel, c);
    let carry = fresh(kernel, "carry", Ty::Flag);
    let sum = fresh(kernel, "sum", w);
    let lt = fresh(kernel, "lt", Ty::Flag);
    let eq = fresh(kernel, "eq", Ty::Flag);
    let ge = fresh(kernel, "ge", Ty::Flag);
    let cond = fresh(kernel, "cond", Ty::Flag);
    let diff = fresh(kernel, "diff", w);

    body.push(Stmt {
        dsts: vec![carry, sum],
        op: Op::AddWide {
            a,
            b,
            carry_in: None,
        },
        comment: comment(src, "rule (22): wide addition with carry"),
    });
    body.push(Stmt {
        dsts: vec![lt],
        op: Op::Lt {
            a: q,
            b: sum.into(),
        },
        comment: comment(src, "rule (24): q < sum"),
    });
    body.push(Stmt {
        dsts: vec![eq],
        op: Op::Eq {
            a: q,
            b: sum.into(),
        },
        comment: comment(src, "rule (24): q =? sum (>= correction)"),
    });
    body.push(Stmt {
        dsts: vec![ge],
        op: Op::BoolOr {
            a: lt.into(),
            b: eq.into(),
        },
        comment: None,
    });
    body.push(Stmt {
        dsts: vec![cond],
        op: Op::BoolOr {
            a: carry.into(),
            b: ge.into(),
        },
        comment: comment(src, "rule (24): overflow or sum >= q"),
    });
    body.push(Stmt {
        dsts: vec![diff],
        op: Op::Sub {
            a: sum.into(),
            b: q,
            borrow_in: None,
        },
        comment: comment(src, "rule (25): conditional subtraction value"),
    });
    body.push(Stmt {
        dsts: vec![c],
        op: Op::Select {
            cond: cond.into(),
            if_true: diff.into(),
            if_false: sum.into(),
        },
        comment: comment(src, "conditional assignment"),
    });
}

/// `c = (a - b) mod q`  →  Listing 2's `_dsubmod` structure at width `W`.
fn expand_submod(
    kernel: &mut Kernel,
    body: &mut Vec<Stmt>,
    c: VarId,
    a: Operand,
    b: Operand,
    q: Operand,
    src: &Stmt,
) {
    let w = width_of(kernel, c);
    let diff = fresh(kernel, "diff", w);
    let borrow = fresh(kernel, "borrow", Ty::Flag);
    let carry = fresh(kernel, "carry", Ty::Flag);
    let fixed = fresh(kernel, "fixed", w);

    body.push(Stmt {
        dsts: vec![diff],
        op: Op::Sub {
            a,
            b,
            borrow_in: None,
        },
        comment: comment(src, "rule (25): wrapping subtraction"),
    });
    body.push(Stmt {
        dsts: vec![borrow],
        op: Op::Lt { a, b },
        comment: comment(src, "rule (26): borrow = a < b"),
    });
    body.push(Stmt {
        dsts: vec![carry, fixed],
        op: Op::AddWide {
            a: diff.into(),
            b: q,
            carry_in: None,
        },
        comment: comment(src, "add modulus back"),
    });
    body.push(Stmt {
        dsts: vec![c],
        op: Op::Select {
            cond: borrow.into(),
            if_true: fixed.into(),
            if_false: diff.into(),
        },
        comment: comment(src, "conditional assignment"),
    });
}

/// `c = (a · b) mod q` via Barrett  →  Listing 4's `_dmulmod` structure at width `W`.
#[allow(clippy::too_many_arguments)]
fn expand_mulmod(
    kernel: &mut Kernel,
    body: &mut Vec<Stmt>,
    c: VarId,
    a: Operand,
    b: Operand,
    q: Operand,
    mu: Operand,
    mbits: u32,
    src: &Stmt,
) {
    let w = width_of(kernel, c);
    let t_hi = fresh(kernel, "t_hi", w);
    let t_lo = fresh(kernel, "t_lo", w);
    let r1 = fresh(kernel, "r1", w);
    let p_hi = fresh(kernel, "p_hi", w);
    let p_lo = fresh(kernel, "p_lo", w);
    let r2 = fresh(kernel, "r2", w);
    let r2q = fresh(kernel, "r2q", w);
    let c0 = fresh(kernel, "c0", w);
    let lt = fresh(kernel, "lt", Ty::Flag);
    let c1 = fresh(kernel, "c1", w);

    body.push(Stmt {
        dsts: vec![t_hi, t_lo],
        op: Op::MulWide { a, b },
        comment: comment(src, "t = a * b (rule (28))"),
    });
    body.push(Stmt {
        dsts: vec![r1],
        op: Op::ShrMulti {
            words: vec![t_hi.into(), t_lo.into()],
            shift: mbits - 2,
        },
        comment: comment(src, "r1 = t >> (mbits - 2)"),
    });
    body.push(Stmt {
        dsts: vec![p_hi, p_lo],
        op: Op::MulWide {
            a: r1.into(),
            b: mu,
        },
        comment: comment(src, "p = r1 * mu"),
    });
    body.push(Stmt {
        dsts: vec![r2],
        op: Op::ShrMulti {
            words: vec![p_hi.into(), p_lo.into()],
            shift: mbits + 5,
        },
        comment: comment(src, "r2 = p >> (mbits + 5) ~= floor(a*b/q)"),
    });
    body.push(Stmt {
        dsts: vec![r2q],
        op: Op::MulLow { a: r2.into(), b: q },
        comment: comment(src, "r2*q (low half only, Listing 4 optimization)"),
    });
    body.push(Stmt {
        dsts: vec![c0],
        op: Op::Sub {
            a: t_lo.into(),
            b: r2q.into(),
            borrow_in: None,
        },
        comment: comment(src, "c0 = t - r2*q, fits one word since c0 < 2q"),
    });
    body.push(Stmt {
        dsts: vec![lt],
        op: Op::Lt { a: c0.into(), b: q },
        comment: comment(src, "off-by-one correction test"),
    });
    body.push(Stmt {
        dsts: vec![c1],
        op: Op::Sub {
            a: c0.into(),
            b: q,
            borrow_in: None,
        },
        comment: None,
    });
    body.push(Stmt {
        dsts: vec![c],
        op: Op::Select {
            cond: lt.into(),
            if_true: c0.into(),
            if_false: c1.into(),
        },
        comment: comment(src, "conditional assignment"),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{build, KernelOp, KernelSpec};
    use moma_ir::validate::validate;
    use moma_ir::{cost, interp};

    #[test]
    fn expansion_removes_high_level_ops() {
        for op in KernelOp::all() {
            let hl = build(&KernelSpec::new(op, 128));
            let expanded = expand_modular_ops(&hl.kernel);
            assert!(
                expanded.body.iter().all(|s| !s.op.is_high_level()),
                "{op:?} still has high-level statements"
            );
            validate(&expanded).unwrap();
        }
    }

    #[test]
    fn expanded_64_bit_addmod_is_executable_and_correct() {
        // At 64 bits the expansion alone is already machine level — the Listing 1 case.
        let hl = build(&KernelSpec::new(KernelOp::ModAdd, 64));
        let expanded = expand_modular_ops(&hl.kernel);
        assert!(expanded.is_machine_level(64));
        let q = 0x0FFF_FFA0_0000_0001u64; // 60-bit prime
        for (a, b) in [
            (0u64, 0u64),
            (q - 1, q - 1),
            (1, q - 1),
            (123456, 654321),
            (q / 2, q / 2 + 1),
        ] {
            let r = interp::run(&expanded, &[a, b, q]).unwrap();
            let expected = ((a as u128 + b as u128) % q as u128) as u64;
            assert_eq!(r.outputs[0], expected, "a={a} b={b}");
        }
    }

    #[test]
    fn expanded_64_bit_submod_and_mulmod_are_correct() {
        let q = 0x0FFF_FFA0_0000_0001u64;
        let mbits = 60;
        let mu = ((1u128 << (2 * mbits + 3)) / q as u128) as u64;

        let sub = expand_modular_ops(&build(&KernelSpec::new(KernelOp::ModSub, 64)).kernel);
        let mul = expand_modular_ops(&build(&KernelSpec::new(KernelOp::ModMul, 64)).kernel);
        assert!(sub.is_machine_level(64) && mul.is_machine_level(64));

        let mut state = 0x2545F4914F6CDD1Du64;
        for _ in 0..200 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = state % q;
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let b = state % q;
            let r = interp::run(&sub, &[a, b, q]).unwrap();
            let expected = if a >= b { a - b } else { a + q - b };
            assert_eq!(r.outputs[0], expected);

            let r = interp::run(&mul, &[a, b, q, mu]).unwrap();
            let expected = ((a as u128 * b as u128) % q as u128) as u64;
            assert_eq!(r.outputs[0], expected);
        }
    }

    #[test]
    fn expanded_64_bit_muladdmod_matches_fused_semantics() {
        // Build a one-statement kernel around the fused op and check that its
        // expansion (MulModBarrett + AddMod word algebra) computes (a·b + c) mod q.
        let q = 0x0FFF_FFA0_0000_0001u64;
        let mbits = 60;
        let mu = ((1u128 << (2 * mbits + 3)) / q as u128) as u64;
        let mut kb = moma_ir::KernelBuilder::new("macmod64");
        let a = kb.param("a", Ty::UInt(64));
        let b = kb.param("b", Ty::UInt(64));
        let c = kb.param("c", Ty::UInt(64));
        let qv = kb.param("q", Ty::UInt(64));
        let muv = kb.param("mu", Ty::UInt(64));
        let out = kb.output("out", Ty::UInt(64));
        kb.push(
            vec![out],
            Op::MulAddMod {
                a: a.into(),
                b: b.into(),
                c: c.into(),
                q: qv.into(),
                mu: muv.into(),
                mbits,
            },
        );
        let kernel = kb.build();
        let expanded = expand_modular_ops(&kernel);
        assert!(expanded.body.iter().all(|s| !s.op.is_high_level()));
        assert!(expanded.is_machine_level(64));
        validate(&expanded).unwrap();

        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        for _ in 0..200 {
            let mut next = || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                state % q
            };
            let (a, b, c) = (next(), next(), next());
            let fused = interp::run(&kernel, &[a, b, c, q, mu]).unwrap();
            let lowered = interp::run(&expanded, &[a, b, c, q, mu]).unwrap();
            let expected = ((a as u128 * b as u128 + c as u128) % q as u128) as u64;
            assert_eq!(fused.outputs[0], expected, "a={a} b={b} c={c}");
            assert_eq!(lowered.outputs[0], expected, "a={a} b={b} c={c}");
        }
    }

    #[test]
    fn butterfly_expansion_counts() {
        // A butterfly is one modular multiplication, one addition, one subtraction.
        let hl = build(&KernelSpec::new(KernelOp::Butterfly, 128));
        let expanded = expand_modular_ops(&hl.kernel);
        let counts = cost::static_counts(&expanded);
        assert_eq!(counts.get("mulwide"), 2); // a*b and r1*mu
        assert_eq!(counts.get("mullow"), 1); // r2*q
        assert_eq!(counts.get("shr"), 2);
        assert_eq!(counts.get("select"), 3);
    }
}
