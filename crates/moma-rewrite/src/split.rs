//! Type splitting: one application of the paper's recursive rewrite rules.
//!
//! [`split_once`] takes a kernel whose widest integer type is `UInt(W)` and produces an
//! equivalent kernel in which every `W`-wide value has been replaced by a pair of
//! `W/2`-wide values (rule (19)), with every operation rewritten accordingly:
//!
//! * wide addition → carry chain over the halves (rules (22), (23), (29));
//! * subtraction → borrow chain (rule (25), extended with an incoming borrow);
//! * comparison → lexicographic combination (rules (26), (27));
//! * widening multiplication → schoolbook (rule (28)) or Karatsuba (Equation 9);
//! * low-half multiplication → the three products whose results land in the low half;
//! * conditional select and copies → per-half copies (the "trivial" rewrites the paper
//!   does not list);
//! * constant multi-word shifts → the same shift over twice as many half-words.
//!
//! Applying [`split_once`] repeatedly until the maximal width reaches the machine word
//! realizes the recursion of §3.2 ("multi-word modular arithmetic via recursion").

use crate::MulAlgorithm;
use moma_ir::{Kernel, Op, Operand, Stmt, Ty, Var, VarId};
use std::collections::HashMap;

/// How an original variable maps into the split kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarMapping {
    /// The variable was below the split width and is carried over unchanged.
    Single(VarId),
    /// The variable was split into `(hi, lo)` halves (paper order: `[x0, x1]` with `x0`
    /// the most significant half).
    Pair(VarId, VarId),
}

/// Result of one splitting step.
#[derive(Debug, Clone)]
pub struct SplitResult {
    /// The rewritten kernel (maximal width halved).
    pub kernel: Kernel,
    /// Mapping from old variables to new ones.
    pub mapping: HashMap<VarId, VarMapping>,
    /// Updated known-zero-top-bits facts for the new kernel's variables.
    pub zero_top_bits: HashMap<VarId, u32>,
}

struct Splitter {
    out: Kernel,
    mapping: HashMap<VarId, VarMapping>,
    body: Vec<Stmt>,
    half: u32,
    mul_algorithm: MulAlgorithm,
    fresh_counter: usize,
}

impl Splitter {
    fn fresh(&mut self, prefix: &str, ty: Ty) -> VarId {
        self.fresh_counter += 1;
        let id = VarId(self.out.vars.len());
        self.out.vars.push(Var {
            name: format!("{prefix}_{}", self.fresh_counter),
            ty,
        });
        id
    }

    fn push(&mut self, dsts: Vec<VarId>, op: Op, comment: Option<String>) {
        self.body.push(Stmt { dsts, op, comment });
    }

    /// Maps an operand at the old width to its `(hi, lo)` halves.
    fn split_operand(&self, o: Operand) -> (Operand, Operand) {
        match o {
            Operand::Var(v) => match self.mapping[&v] {
                VarMapping::Pair(hi, lo) => (hi.into(), lo.into()),
                VarMapping::Single(s) => {
                    // A narrower value used in a wide context: high half is zero.
                    (Operand::Const(0), s.into())
                }
            },
            Operand::Const(c) => (Operand::Const(0), Operand::Const(c)),
        }
    }

    /// Maps an operand that stays at its own (narrow) width.
    fn map_operand(&self, o: Operand) -> Operand {
        match o {
            Operand::Var(v) => match self.mapping[&v] {
                VarMapping::Single(s) => s.into(),
                VarMapping::Pair(_, lo) => lo.into(), // should not happen for well-typed kernels
            },
            c => c,
        }
    }

    /// Maps a destination variable that was split.
    fn split_dst(&self, d: VarId) -> (VarId, VarId) {
        match self.mapping[&d] {
            VarMapping::Pair(hi, lo) => (hi, lo),
            VarMapping::Single(_) => panic!("destination was not split"),
        }
    }

    fn map_dst(&self, d: VarId) -> VarId {
        match self.mapping[&d] {
            VarMapping::Single(s) => s,
            VarMapping::Pair(_, _) => panic!("destination was split but used narrow"),
        }
    }

    /// `flag = a < b` over split operands (rule (26)).
    fn emit_lt(&mut self, dst: VarId, a: Operand, b: Operand, comment: Option<String>) {
        let (a_hi, a_lo) = self.split_operand(a);
        let (b_hi, b_lo) = self.split_operand(b);
        let lt_hi = self.fresh("lt_hi", Ty::Flag);
        let eq_hi = self.fresh("eq_hi", Ty::Flag);
        let lt_lo = self.fresh("lt_lo", Ty::Flag);
        let both = self.fresh("eq_and_lt", Ty::Flag);
        self.push(vec![lt_hi], Op::Lt { a: a_hi, b: b_hi }, comment.clone());
        self.push(vec![eq_hi], Op::Eq { a: a_hi, b: b_hi }, None);
        self.push(vec![lt_lo], Op::Lt { a: a_lo, b: b_lo }, None);
        self.push(
            vec![both],
            Op::BoolAnd {
                a: eq_hi.into(),
                b: lt_lo.into(),
            },
            None,
        );
        self.push(
            vec![dst],
            Op::BoolOr {
                a: lt_hi.into(),
                b: both.into(),
            },
            None,
        );
    }

    /// Borrow-out of `a - b - borrow_in` over split operands:
    /// `(a < b) ∨ ((a =? b) ∧ borrow_in)`.
    fn emit_borrow_out(
        &mut self,
        a_lo: Operand,
        b_lo: Operand,
        borrow_in: Option<Operand>,
    ) -> VarId {
        let lt = self.fresh("bor_lt", Ty::Flag);
        self.push(vec![lt], Op::Lt { a: a_lo, b: b_lo }, None);
        match borrow_in {
            None => lt,
            Some(bin) => {
                let eq = self.fresh("bor_eq", Ty::Flag);
                let and = self.fresh("bor_and", Ty::Flag);
                let or = self.fresh("bor", Ty::Flag);
                self.push(vec![eq], Op::Eq { a: a_lo, b: b_lo }, None);
                self.push(
                    vec![and],
                    Op::BoolAnd {
                        a: eq.into(),
                        b: bin,
                    },
                    None,
                );
                self.push(
                    vec![or],
                    Op::BoolOr {
                        a: lt.into(),
                        b: and.into(),
                    },
                    None,
                );
                or
            }
        }
    }

    /// Rewrites one statement operating at the old wide width.
    fn rewrite_wide_stmt(&mut self, kernel: &Kernel, stmt: &Stmt) {
        let half_ty = Ty::UInt(self.half);
        let comment = stmt.comment.clone();
        match &stmt.op {
            Op::Copy { src } => {
                let (d_hi, d_lo) = self.split_dst(stmt.dsts[0]);
                let (s_hi, s_lo) = self.split_operand(*src);
                self.push(vec![d_hi], Op::Copy { src: s_hi }, comment.clone());
                self.push(vec![d_lo], Op::Copy { src: s_lo }, None);
            }
            Op::AddWide { a, b, carry_in } => {
                // rule (22)/(29): carry chain from the least significant half upward.
                let carry_dst = self.map_dst(stmt.dsts[0]);
                let (s_hi, s_lo) = self.split_dst(stmt.dsts[1]);
                let (a_hi, a_lo) = self.split_operand(*a);
                let (b_hi, b_lo) = self.split_operand(*b);
                let mid = self.fresh("carry_mid", Ty::Flag);
                let cin = carry_in.map(|c| self.map_operand(c));
                self.push(
                    vec![mid, s_lo],
                    Op::AddWide {
                        a: a_lo,
                        b: b_lo,
                        carry_in: cin,
                    },
                    comment.clone(),
                );
                self.push(
                    vec![carry_dst, s_hi],
                    Op::AddWide {
                        a: a_hi,
                        b: b_hi,
                        carry_in: Some(mid.into()),
                    },
                    None,
                );
            }
            Op::Sub { a, b, borrow_in } => {
                // rule (25), extended with an incoming borrow.
                let (d_hi, d_lo) = self.split_dst(stmt.dsts[0]);
                let (a_hi, a_lo) = self.split_operand(*a);
                let (b_hi, b_lo) = self.split_operand(*b);
                let bin = borrow_in.map(|c| self.map_operand(c));
                self.push(
                    vec![d_lo],
                    Op::Sub {
                        a: a_lo,
                        b: b_lo,
                        borrow_in: bin,
                    },
                    comment.clone(),
                );
                let borrow = self.emit_borrow_out(a_lo, b_lo, bin);
                self.push(
                    vec![d_hi],
                    Op::Sub {
                        a: a_hi,
                        b: b_hi,
                        borrow_in: Some(borrow.into()),
                    },
                    None,
                );
            }
            Op::MulWide { a, b } => {
                let (hh, hl) = self.split_dst(stmt.dsts[0]);
                let (lh, ll) = self.split_dst(stmt.dsts[1]);
                let (a_hi, a_lo) = self.split_operand(*a);
                let (b_hi, b_lo) = self.split_operand(*b);
                match self.mul_algorithm {
                    MulAlgorithm::Schoolbook => self.emit_mul_schoolbook(
                        half_ty,
                        [hh, hl, lh, ll],
                        a_hi,
                        a_lo,
                        b_hi,
                        b_lo,
                        comment,
                    ),
                    MulAlgorithm::Karatsuba => self.emit_mul_karatsuba(
                        half_ty,
                        [hh, hl, lh, ll],
                        a_hi,
                        a_lo,
                        b_hi,
                        b_lo,
                        comment,
                    ),
                }
            }
            Op::MulLow { a, b } => {
                // Low W bits of the product: a_lo*b_lo (full) plus the low halves of the
                // cross products shifted by W/2.
                let (d_hi, d_lo) = self.split_dst(stmt.dsts[0]);
                let (a_hi, a_lo) = self.split_operand(*a);
                let (b_hi, b_lo) = self.split_operand(*b);
                let p_hi = self.fresh("ml_hi", half_ty);
                let p_lo = self.fresh("ml_lo", half_ty);
                let e = self.fresh("ml_cross1", half_ty);
                let f = self.fresh("ml_cross2", half_ty);
                let t = self.fresh("ml_t", half_ty);
                let k1 = self.fresh("ml_c1", Ty::Flag);
                let k2 = self.fresh("ml_c2", Ty::Flag);
                self.push(vec![p_hi, p_lo], Op::MulWide { a: a_lo, b: b_lo }, comment);
                self.push(vec![e], Op::MulLow { a: a_lo, b: b_hi }, None);
                self.push(vec![f], Op::MulLow { a: a_hi, b: b_lo }, None);
                self.push(vec![d_lo], Op::Copy { src: p_lo.into() }, None);
                self.push(
                    vec![k1, t],
                    Op::AddWide {
                        a: p_hi.into(),
                        b: e.into(),
                        carry_in: None,
                    },
                    None,
                );
                self.push(
                    vec![k2, d_hi],
                    Op::AddWide {
                        a: t.into(),
                        b: f.into(),
                        carry_in: None,
                    },
                    None,
                );
            }
            Op::Lt { a, b } => {
                let dst = self.map_dst(stmt.dsts[0]);
                self.emit_lt(dst, *a, *b, comment);
            }
            Op::Eq { a, b } => {
                // rule (27)
                let dst = self.map_dst(stmt.dsts[0]);
                let (a_hi, a_lo) = self.split_operand(*a);
                let (b_hi, b_lo) = self.split_operand(*b);
                let eq_hi = self.fresh("eq_hi", Ty::Flag);
                let eq_lo = self.fresh("eq_lo", Ty::Flag);
                self.push(vec![eq_hi], Op::Eq { a: a_hi, b: b_hi }, comment);
                self.push(vec![eq_lo], Op::Eq { a: a_lo, b: b_lo }, None);
                self.push(
                    vec![dst],
                    Op::BoolAnd {
                        a: eq_hi.into(),
                        b: eq_lo.into(),
                    },
                    None,
                );
            }
            Op::Select {
                cond,
                if_true,
                if_false,
            } => {
                let cond = self.map_operand(*cond);
                if kernel.ty(stmt.dsts[0]).needs_lowering(self.half)
                    || kernel.ty(stmt.dsts[0]).bits() == self.half * 2
                {
                    let (d_hi, d_lo) = self.split_dst(stmt.dsts[0]);
                    let (t_hi, t_lo) = self.split_operand(*if_true);
                    let (f_hi, f_lo) = self.split_operand(*if_false);
                    self.push(
                        vec![d_hi],
                        Op::Select {
                            cond,
                            if_true: t_hi,
                            if_false: f_hi,
                        },
                        comment,
                    );
                    self.push(
                        vec![d_lo],
                        Op::Select {
                            cond,
                            if_true: t_lo,
                            if_false: f_lo,
                        },
                        None,
                    );
                } else {
                    let d = self.map_dst(stmt.dsts[0]);
                    let t = self.map_operand(*if_true);
                    let f = self.map_operand(*if_false);
                    self.push(
                        vec![d],
                        Op::Select {
                            cond,
                            if_true: t,
                            if_false: f,
                        },
                        comment,
                    );
                }
            }
            Op::ShrMulti { words, shift } => {
                let mut new_words = Vec::with_capacity(words.len() * 2);
                for w in words {
                    let (hi, lo) = self.split_operand(*w);
                    new_words.push(hi);
                    new_words.push(lo);
                }
                let mut new_dsts = Vec::with_capacity(stmt.dsts.len() * 2);
                for d in &stmt.dsts {
                    let (hi, lo) = self.split_dst(*d);
                    new_dsts.push(hi);
                    new_dsts.push(lo);
                }
                self.push(
                    new_dsts,
                    Op::ShrMulti {
                        words: new_words,
                        shift: *shift,
                    },
                    comment,
                );
            }
            Op::BoolAnd { .. } | Op::BoolOr { .. } => unreachable!("flag ops are never wide"),
            Op::AddMod { .. }
            | Op::SubMod { .. }
            | Op::MulModBarrett { .. }
            | Op::MulAddMod { .. } => {
                unreachable!("high-level ops must be expanded before splitting")
            }
            Op::MacReduceMod { .. } => {
                unreachable!("accumulation loops are introduced by fusion, after lowering")
            }
        }
    }

    /// Schoolbook splitting of a widening multiplication (rule (28) followed by (29)).
    #[allow(clippy::too_many_arguments)]
    fn emit_mul_schoolbook(
        &mut self,
        half_ty: Ty,
        [hh, hl, lh, ll]: [VarId; 4],
        a_hi: Operand,
        a_lo: Operand,
        b_hi: Operand,
        b_lo: Operand,
        comment: Option<String>,
    ) {
        // Four half products.
        let p0h = self.fresh("p_ll_hi", half_ty);
        let p0l = self.fresh("p_ll_lo", half_ty);
        let p3h = self.fresh("p_hh_hi", half_ty);
        let p3l = self.fresh("p_hh_lo", half_ty);
        let p1h = self.fresh("p_hl_hi", half_ty);
        let p1l = self.fresh("p_hl_lo", half_ty);
        let p2h = self.fresh("p_lh_hi", half_ty);
        let p2l = self.fresh("p_lh_lo", half_ty);
        self.push(vec![p0h, p0l], Op::MulWide { a: a_lo, b: b_lo }, comment);
        self.push(vec![p3h, p3l], Op::MulWide { a: a_hi, b: b_hi }, None);
        self.push(vec![p1h, p1l], Op::MulWide { a: a_hi, b: b_lo }, None);
        self.push(vec![p2h, p2l], Op::MulWide { a: a_lo, b: b_hi }, None);
        // Cross sum: [cr, x_hi, x_lo] = p1 + p2 (rule (22)).
        let cf = self.fresh("cross_c", Ty::Flag);
        let x_lo = self.fresh("cross_lo", half_ty);
        let cr = self.fresh("cross_carry", Ty::Flag);
        let x_hi = self.fresh("cross_hi", half_ty);
        self.push(
            vec![cf, x_lo],
            Op::AddWide {
                a: p1l.into(),
                b: p2l.into(),
                carry_in: None,
            },
            None,
        );
        self.push(
            vec![cr, x_hi],
            Op::AddWide {
                a: p1h.into(),
                b: p2h.into(),
                carry_in: Some(cf.into()),
            },
            None,
        );
        // Accumulate into the four result words (rule (29)).
        let k1 = self.fresh("acc_c1", Ty::Flag);
        let k2 = self.fresh("acc_c2", Ty::Flag);
        let k3 = self.fresh("acc_c3", Ty::Flag);
        self.push(vec![ll], Op::Copy { src: p0l.into() }, None);
        self.push(
            vec![k1, lh],
            Op::AddWide {
                a: p0h.into(),
                b: x_lo.into(),
                carry_in: None,
            },
            None,
        );
        self.push(
            vec![k2, hl],
            Op::AddWide {
                a: p3l.into(),
                b: x_hi.into(),
                carry_in: Some(k1.into()),
            },
            None,
        );
        self.push(
            vec![k3, hh],
            Op::AddWide {
                a: p3h.into(),
                b: cr.into(),
                carry_in: Some(k2.into()),
            },
            None,
        );
    }

    /// Karatsuba splitting of a widening multiplication (Equation 9): three half
    /// products plus extra additions/subtractions and carry corrections.
    #[allow(clippy::too_many_arguments)]
    fn emit_mul_karatsuba(
        &mut self,
        half_ty: Ty,
        [hh, hl, lh, ll]: [VarId; 4],
        a_hi: Operand,
        a_lo: Operand,
        b_hi: Operand,
        b_lo: Operand,
        comment: Option<String>,
    ) {
        // z0 = a_lo*b_lo, z2 = a_hi*b_hi
        let z0h = self.fresh("z0_hi", half_ty);
        let z0l = self.fresh("z0_lo", half_ty);
        let z2h = self.fresh("z2_hi", half_ty);
        let z2l = self.fresh("z2_lo", half_ty);
        self.push(vec![z0h, z0l], Op::MulWide { a: a_lo, b: b_lo }, comment);
        self.push(vec![z2h, z2l], Op::MulWide { a: a_hi, b: b_hi }, None);
        // sa = a_lo + a_hi (carry ca), sb = b_lo + b_hi (carry cb)
        let ca = self.fresh("ka_ca", Ty::Flag);
        let sa = self.fresh("ka_sa", half_ty);
        let cb = self.fresh("ka_cb", Ty::Flag);
        let sb = self.fresh("ka_sb", half_ty);
        self.push(
            vec![ca, sa],
            Op::AddWide {
                a: a_lo,
                b: a_hi,
                carry_in: None,
            },
            None,
        );
        self.push(
            vec![cb, sb],
            Op::AddWide {
                a: b_lo,
                b: b_hi,
                carry_in: None,
            },
            None,
        );
        // m = sa*sb
        let mh = self.fresh("ka_m_hi", half_ty);
        let ml = self.fresh("ka_m_lo", half_ty);
        self.push(
            vec![mh, ml],
            Op::MulWide {
                a: sa.into(),
                b: sb.into(),
            },
            None,
        );
        // Carry corrections: (ca·2^H + sa)(cb·2^H + sb)
        //   = m + ca·sb·2^H + cb·sa·2^H + (ca∧cb)·2^2H  — a 3-half-word value [e2, e1, e0].
        let t1 = self.fresh("ka_t1", half_ty);
        let t2 = self.fresh("ka_t2", half_ty);
        self.push(
            vec![t1],
            Op::Select {
                cond: ca.into(),
                if_true: sb.into(),
                if_false: Operand::Const(0),
            },
            None,
        );
        self.push(
            vec![t2],
            Op::Select {
                cond: cb.into(),
                if_true: sa.into(),
                if_false: Operand::Const(0),
            },
            None,
        );
        let e0 = ml;
        let k1 = self.fresh("ka_k1", Ty::Flag);
        let e1a = self.fresh("ka_e1a", half_ty);
        let k2 = self.fresh("ka_k2", Ty::Flag);
        let e1 = self.fresh("ka_e1", half_ty);
        self.push(
            vec![k1, e1a],
            Op::AddWide {
                a: mh.into(),
                b: t1.into(),
                carry_in: None,
            },
            None,
        );
        self.push(
            vec![k2, e1],
            Op::AddWide {
                a: e1a.into(),
                b: t2.into(),
                carry_in: None,
            },
            None,
        );
        let cacb = self.fresh("ka_cacb", Ty::Flag);
        self.push(
            vec![cacb],
            Op::BoolAnd {
                a: ca.into(),
                b: cb.into(),
            },
            None,
        );
        let kz1 = self.fresh("ka_kz1", Ty::Flag);
        let e2a = self.fresh("ka_e2a", half_ty);
        let kz2 = self.fresh("ka_kz2", Ty::Flag);
        let e2 = self.fresh("ka_e2", half_ty);
        self.push(
            vec![kz1, e2a],
            Op::AddWide {
                a: k1.into(),
                b: k2.into(),
                carry_in: None,
            },
            None,
        );
        self.push(
            vec![kz2, e2],
            Op::AddWide {
                a: e2a.into(),
                b: cacb.into(),
                carry_in: None,
            },
            None,
        );
        // cross = [e2, e1, e0] − z0 − z2, a value of at most 2H+1 bits.
        let (s2, s1, s0) = self.emit_sub3(half_ty, e2, e1, e0, z0h, z0l);
        let (u2, u1, u0) = self.emit_sub3(half_ty, s2, s1, s0, z2h, z2l);
        // result = z2·2^(2H) + cross·2^H + z0
        let r1c = self.fresh("ka_r1c", Ty::Flag);
        let r2c = self.fresh("ka_r2c", Ty::Flag);
        let r3c = self.fresh("ka_r3c", Ty::Flag);
        self.push(vec![ll], Op::Copy { src: z0l.into() }, None);
        self.push(
            vec![r1c, lh],
            Op::AddWide {
                a: z0h.into(),
                b: u0.into(),
                carry_in: None,
            },
            None,
        );
        self.push(
            vec![r2c, hl],
            Op::AddWide {
                a: z2l.into(),
                b: u1.into(),
                carry_in: Some(r1c.into()),
            },
            None,
        );
        self.push(
            vec![r3c, hh],
            Op::AddWide {
                a: z2h.into(),
                b: u2.into(),
                carry_in: Some(r2c.into()),
            },
            None,
        );
    }

    /// Three-half-word minus two-half-word subtraction used by the Karatsuba rewrite:
    /// `[e2, e1, e0] − [s_hi, s_lo]`, returning the three result half-words.
    fn emit_sub3(
        &mut self,
        half_ty: Ty,
        e2: VarId,
        e1: VarId,
        e0: VarId,
        s_hi: VarId,
        s_lo: VarId,
    ) -> (VarId, VarId, VarId) {
        let r0 = self.fresh("ks_r0", half_ty);
        let r1 = self.fresh("ks_r1", half_ty);
        let r2 = self.fresh("ks_r2", half_ty);
        self.push(
            vec![r0],
            Op::Sub {
                a: e0.into(),
                b: s_lo.into(),
                borrow_in: None,
            },
            None,
        );
        let b0 = self.emit_borrow_out(e0.into(), s_lo.into(), None);
        self.push(
            vec![r1],
            Op::Sub {
                a: e1.into(),
                b: s_hi.into(),
                borrow_in: Some(b0.into()),
            },
            None,
        );
        let b1 = self.emit_borrow_out(e1.into(), s_hi.into(), Some(b0.into()));
        self.push(
            vec![r2],
            Op::Sub {
                a: e2.into(),
                b: Operand::Const(0),
                borrow_in: Some(b1.into()),
            },
            None,
        );
        (r2, r1, r0)
    }
}

/// Splits every variable of the widest integer width into two halves and rewrites the
/// body accordingly (one recursion step of §3.2).
///
/// `zero_top_bits` carries "the top `n` bits of this variable are known to be zero"
/// facts (used by the non-power-of-two-width optimization of §4); the returned map
/// contains the corresponding facts about the new variables.
///
/// # Panics
///
/// Panics if the kernel still contains high-level modular operations (call
/// [`crate::expand::expand_modular_ops`] first) or if the widest width is odd.
pub fn split_once(
    kernel: &Kernel,
    zero_top_bits: &HashMap<VarId, u32>,
    mul_algorithm: MulAlgorithm,
) -> SplitResult {
    let wide = kernel.max_width();
    assert!(wide % 2 == 0, "cannot split an odd width {wide}");
    let half = wide / 2;

    let mut out = Kernel {
        name: kernel.name.clone(),
        vars: Vec::new(),
        params: Vec::new(),
        outputs: Vec::new(),
        body: Vec::new(),
    };
    let mut mapping = HashMap::new();
    let mut new_zero_top: HashMap<VarId, u32> = HashMap::new();

    // Rebuild the variable table: wide variables become (hi, lo) pairs, everything else
    // is carried over. Parameters and outputs keep their relative order, with the high
    // half first (the paper's big-endian digit order [x0, x1]).
    for (i, var) in kernel.vars.iter().enumerate() {
        let id = VarId(i);
        let zt = zero_top_bits.get(&id).copied().unwrap_or(0);
        if var.ty == Ty::UInt(wide) {
            let hi = VarId(out.vars.len());
            out.vars.push(Var {
                name: format!("{}_hi", var.name),
                ty: Ty::UInt(half),
            });
            let lo = VarId(out.vars.len());
            out.vars.push(Var {
                name: format!("{}_lo", var.name),
                ty: Ty::UInt(half),
            });
            mapping.insert(id, VarMapping::Pair(hi, lo));
            new_zero_top.insert(hi, zt.min(half));
            new_zero_top.insert(lo, zt.saturating_sub(half));
        } else {
            let new_id = VarId(out.vars.len());
            out.vars.push(var.clone());
            mapping.insert(id, VarMapping::Single(new_id));
            if zt > 0 {
                new_zero_top.insert(new_id, zt);
            }
        }
    }
    for p in &kernel.params {
        match mapping[p] {
            VarMapping::Pair(hi, lo) => {
                out.params.push(hi);
                out.params.push(lo);
            }
            VarMapping::Single(s) => out.params.push(s),
        }
    }
    for o in &kernel.outputs {
        match mapping[o] {
            VarMapping::Pair(hi, lo) => {
                out.outputs.push(hi);
                out.outputs.push(lo);
            }
            VarMapping::Single(s) => out.outputs.push(s),
        }
    }

    let mut splitter = Splitter {
        out,
        mapping,
        body: Vec::new(),
        half,
        mul_algorithm,
        fresh_counter: 0,
    };

    for stmt in &kernel.body {
        let touches_wide = stmt.dsts.iter().any(|d| kernel.ty(*d) == Ty::UInt(wide))
            || stmt.op.operands().iter().any(|o| {
                o.as_var()
                    .map(|v| kernel.ty(v) == Ty::UInt(wide))
                    .unwrap_or(false)
            });
        if touches_wide {
            splitter.rewrite_wide_stmt(kernel, stmt);
        } else {
            // Narrow statement: remap variable ids and keep it.
            let dsts = stmt.dsts.iter().map(|d| splitter.map_dst(*d)).collect();
            let op = remap_op(&stmt.op, &splitter);
            splitter.push(dsts, op, stmt.comment.clone());
        }
    }

    let mut kernel_out = splitter.out;
    kernel_out.body = splitter.body;
    SplitResult {
        kernel: kernel_out,
        mapping: splitter.mapping,
        zero_top_bits: new_zero_top,
    }
}

/// Remaps the operands of a narrow statement.
fn remap_op(op: &Op, s: &Splitter) -> Op {
    let m = |o: &Operand| s.map_operand(*o);
    match op {
        Op::Copy { src } => Op::Copy { src: m(src) },
        Op::AddWide { a, b, carry_in } => Op::AddWide {
            a: m(a),
            b: m(b),
            carry_in: carry_in.as_ref().map(m),
        },
        Op::Sub { a, b, borrow_in } => Op::Sub {
            a: m(a),
            b: m(b),
            borrow_in: borrow_in.as_ref().map(m),
        },
        Op::MulWide { a, b } => Op::MulWide { a: m(a), b: m(b) },
        Op::MulLow { a, b } => Op::MulLow { a: m(a), b: m(b) },
        Op::Lt { a, b } => Op::Lt { a: m(a), b: m(b) },
        Op::Eq { a, b } => Op::Eq { a: m(a), b: m(b) },
        Op::BoolAnd { a, b } => Op::BoolAnd { a: m(a), b: m(b) },
        Op::BoolOr { a, b } => Op::BoolOr { a: m(a), b: m(b) },
        Op::Select {
            cond,
            if_true,
            if_false,
        } => Op::Select {
            cond: m(cond),
            if_true: m(if_true),
            if_false: m(if_false),
        },
        Op::ShrMulti { words, shift } => Op::ShrMulti {
            words: words.iter().map(m).collect(),
            shift: *shift,
        },
        Op::AddMod { a, b, q } => Op::AddMod {
            a: m(a),
            b: m(b),
            q: m(q),
        },
        Op::SubMod { a, b, q } => Op::SubMod {
            a: m(a),
            b: m(b),
            q: m(q),
        },
        Op::MulModBarrett { a, b, q, mu, mbits } => Op::MulModBarrett {
            a: m(a),
            b: m(b),
            q: m(q),
            mu: m(mu),
            mbits: *mbits,
        },
        Op::MulAddMod {
            a,
            b,
            c,
            q,
            mu,
            mbits,
        } => Op::MulAddMod {
            a: m(a),
            b: m(b),
            c: m(c),
            q: m(q),
            mu: m(mu),
            mbits: *mbits,
        },
        Op::MacReduceMod {
            pairs,
            q,
            mu,
            mbits,
            radix,
            recip,
        } => Op::MacReduceMod {
            pairs: pairs.iter().map(|(a, b)| (m(a), m(b))).collect(),
            q: *q,
            mu: *mu,
            mbits: *mbits,
            radix: *radix,
            recip: *recip,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{build, KernelOp, KernelSpec};
    use crate::expand::expand_modular_ops;
    use moma_ir::validate::validate;
    use moma_ir::{cost, interp};

    /// Lowers a 128-bit kernel to 64-bit words with one split step and checks it against
    /// direct 128-bit arithmetic.
    fn check_128(op: KernelOp, alg: MulAlgorithm, cases: &[(u128, u128)]) {
        let hl = build(&KernelSpec::new(op, 128));
        let expanded = expand_modular_ops(&hl.kernel);
        let split = split_once(&expanded, &HashMap::new(), alg);
        validate(&split.kernel).unwrap();
        assert!(split.kernel.is_machine_level(64));

        let q: u128 = (1u128 << 124) - 159; // a 124-bit prime-like modulus
        let _mbits = 124u32;
        let mu: u128 = {
            // floor(2^(2*124+3)/q) computed via long division over u128 halves.
            // 2^(251)/q: since q ~ 2^124, mu ~ 2^127 fits u128.
            let mut rem: u128 = 0;
            let mut quotient: u128 = 0;
            for i in (0..252u32).rev() {
                rem <<= 1;
                if i == 251 {
                    rem |= 1;
                }
                quotient <<= 1;
                if rem >= q {
                    rem -= q;
                    quotient |= 1;
                }
            }
            quotient
        };
        let split_u128 = |x: u128| [(x >> 64) as u64, x as u64];

        for &(a, b) in cases {
            let a = a % q;
            let b = b % q;
            let mut inputs = Vec::new();
            match op {
                KernelOp::ModAdd | KernelOp::ModSub => {
                    inputs.extend(split_u128(a));
                    inputs.extend(split_u128(b));
                    inputs.extend(split_u128(q));
                }
                KernelOp::ModMul => {
                    inputs.extend(split_u128(a));
                    inputs.extend(split_u128(b));
                    inputs.extend(split_u128(q));
                    inputs.extend(split_u128(mu));
                }
                _ => unreachable!(),
            }
            let r = interp::run(&split.kernel, &inputs).unwrap();
            let got = (r.outputs[0] as u128) << 64 | r.outputs[1] as u128;
            let expected = match op {
                KernelOp::ModAdd => (a + b) % q,
                KernelOp::ModSub => {
                    if a >= b {
                        a - b
                    } else {
                        a + q - b
                    }
                }
                KernelOp::ModMul => {
                    // (a*b) mod q via 256-bit arithmetic emulated with u128 halves:
                    // use repeated doubling to stay within u128.
                    let mut result = 0u128;
                    let mut acc = a % q;
                    let mut bb = b;
                    while bb > 0 {
                        if bb & 1 == 1 {
                            result = (result + acc) % q;
                        }
                        acc = (acc + acc) % q;
                        bb >>= 1;
                    }
                    result
                }
                _ => unreachable!(),
            };
            assert_eq!(got, expected, "{op:?} a={a:x} b={b:x}");
        }
    }

    #[test]
    fn split_addmod_128_matches_reference() {
        check_128(
            KernelOp::ModAdd,
            MulAlgorithm::Schoolbook,
            &[(0, 0), (1, 2), (u128::MAX, u128::MAX), (1 << 100, 1 << 123)],
        );
    }

    #[test]
    fn split_submod_128_matches_reference() {
        check_128(
            KernelOp::ModSub,
            MulAlgorithm::Schoolbook,
            &[(0, 0), (5, 9), (u128::MAX, 3), (1 << 64, u128::MAX >> 5)],
        );
    }

    #[test]
    fn split_mulmod_128_matches_reference_schoolbook() {
        check_128(
            KernelOp::ModMul,
            MulAlgorithm::Schoolbook,
            &[
                (0, 12345),
                (1, u128::MAX),
                (u128::MAX, u128::MAX),
                (
                    0xdeadbeefdeadbeefdeadbeefdeadbeef,
                    0xcafebabecafebabecafebabecafebabe,
                ),
                ((1 << 124) - 160, (1 << 124) - 161),
            ],
        );
    }

    #[test]
    fn split_mulmod_128_matches_reference_karatsuba() {
        check_128(
            KernelOp::ModMul,
            MulAlgorithm::Karatsuba,
            &[
                (0, 12345),
                (u128::MAX, u128::MAX),
                (
                    0x123456789abcdef0123456789abcdef0,
                    0xfedcba9876543210fedcba9876543210,
                ),
                ((1 << 124) - 160, 7),
            ],
        );
    }

    #[test]
    fn schoolbook_vs_karatsuba_multiplication_counts() {
        // The paper §5.4: schoolbook double-word multiplication uses 4 single-word
        // multiplications, Karatsuba uses 3.
        let hl = build(&KernelSpec::new(KernelOp::ModMul, 128));
        let expanded = expand_modular_ops(&hl.kernel);
        let sb = split_once(&expanded, &HashMap::new(), MulAlgorithm::Schoolbook);
        let ka = split_once(&expanded, &HashMap::new(), MulAlgorithm::Karatsuba);
        let sb_counts = cost::static_counts(&sb.kernel);
        let ka_counts = cost::static_counts(&ka.kernel);
        // Two wide MulWide (a*b and r1*mu) plus one wide MulLow in the Barrett sequence.
        // Schoolbook: 2*4 + (1 wide MulWide inside MulLow split + 2 MulLow) = 8 + 1 = 9 MulWide, 2 MulLow
        assert_eq!(sb_counts.get("mulwide"), 9);
        assert_eq!(ka_counts.get("mulwide"), 7); // 2*3 Karatsuba + 1 inside MulLow split
        assert!(ka_counts.add_sub() > sb_counts.add_sub());
    }

    #[test]
    fn zero_top_bits_propagate_through_split() {
        let hl = build(&KernelSpec::new(KernelOp::ModAdd, 384));
        assert_eq!(hl.zero_top_bits, 128);
        let expanded = expand_modular_ops(&hl.kernel);
        let zt: HashMap<VarId, u32> = hl
            .kernel
            .params
            .iter()
            .map(|p| (*p, hl.zero_top_bits))
            .collect();
        let split = split_once(&expanded, &zt, MulAlgorithm::Schoolbook);
        // 512-bit params split into 256-bit halves; the high half of each original
        // parameter has 128 of its 256 bits known zero.
        let a_hi = split.kernel.params[0];
        let a_lo = split.kernel.params[1];
        assert_eq!(split.zero_top_bits.get(&a_hi), Some(&128));
        assert_eq!(split.zero_top_bits.get(&a_lo).copied().unwrap_or(0), 0);
        // Splitting again: the top 256-bit half becomes two 128-bit quarters, the
        // topmost of which is entirely zero.
        let split2 = split_once(
            &split.kernel,
            &split.zero_top_bits,
            MulAlgorithm::Schoolbook,
        );
        let a_hi_hi = split2.kernel.params[0];
        assert_eq!(split2.zero_top_bits.get(&a_hi_hi), Some(&128));
    }
}
