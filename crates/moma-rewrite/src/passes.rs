//! Optimization passes over lowered kernels.
//!
//! Three passes run after lowering (all optional, see [`crate::LoweringConfig`]):
//!
//! * **zero pruning** ([`prune_known_zeros`]) — the §4 optimization for
//!   non-power-of-two input widths: parameters whose words are known to be zero at run
//!   time are replaced by the constant 0, so the later passes can delete the operations
//!   that only shuffle zeros around;
//! * **simplification** ([`simplify`]) — constant folding of the operation forms that
//!   zero pruning exposes (`x + 0`, `x · 0`, selects with equal arms, …) plus copy
//!   propagation;
//! * **dead-code elimination** ([`eliminate_dead_code`]) — removes statements whose
//!   results are never used.
//!
//! [`optimize`] runs simplification and DCE to a fixed point.

use moma_ir::{Kernel, Op, Operand, Stmt, VarId};
use std::collections::{HashMap, HashSet};

/// Replaces every use of a fully-known-zero variable with the constant zero.
///
/// `zero_top_bits` maps variables to the number of known-zero high bits; a variable is
/// pruned when that number equals its full width (which is how padded parameters end up
/// after the recursive splitting of a 384-bit value stored in a 512-bit container).
pub fn prune_known_zeros(kernel: &Kernel, zero_top_bits: &HashMap<VarId, u32>) -> Kernel {
    let zero_vars: HashSet<VarId> = zero_top_bits
        .iter()
        .filter(|(v, zt)| kernel.ty(**v).bits() <= **zt)
        .map(|(v, _)| *v)
        .collect();
    if zero_vars.is_empty() {
        return kernel.clone();
    }
    let mut out = kernel.clone();
    for stmt in &mut out.body {
        stmt.op = map_operands(&stmt.op, &|o| match o {
            Operand::Var(v) if zero_vars.contains(&v) => Operand::Const(0),
            other => other,
        });
    }
    out
}

/// Applies one round of constant folding and copy propagation.
///
/// Returns the new kernel and whether anything changed.
pub fn simplify(kernel: &Kernel) -> (Kernel, bool) {
    let mut out = kernel.clone();
    let mut changed = false;

    // Copy propagation environment: var -> replacement operand.
    let mut env: HashMap<VarId, Operand> = HashMap::new();
    let outputs: HashSet<VarId> = kernel.outputs.iter().copied().collect();

    let mut new_body = Vec::with_capacity(out.body.len());
    for stmt in &out.body {
        // Rewrite operands through the environment first.
        let op = map_operands(&stmt.op, &|o| match o {
            Operand::Var(v) => env.get(&v).copied().unwrap_or(o),
            c => c,
        });
        // Invalidate any environment entries that referenced a variable we are about to
        // overwrite (kernels are not strictly SSA after repeated passes).
        for d in &stmt.dsts {
            env.remove(d);
            env.retain(|_, repl| repl.as_var() != Some(*d));
        }
        let folded = fold(&op, stmt, kernel);
        match folded {
            Some(new_stmts) => {
                changed = true;
                for s in new_stmts {
                    register_copy(&s, &outputs, &mut env);
                    new_body.push(s);
                }
            }
            None => {
                let s = Stmt {
                    dsts: stmt.dsts.clone(),
                    op,
                    comment: stmt.comment.clone(),
                };
                if s.op != stmt.op {
                    changed = true;
                }
                register_copy(&s, &outputs, &mut env);
                new_body.push(s);
            }
        }
    }
    out.body = new_body;
    (out, changed)
}

/// Records `dst -> src` for copies of locals so later uses can be propagated.
fn register_copy(stmt: &Stmt, outputs: &HashSet<VarId>, env: &mut HashMap<VarId, Operand>) {
    if let Op::Copy { src } = stmt.op {
        let dst = stmt.dsts[0];
        if !outputs.contains(&dst) {
            env.insert(dst, src);
        }
    }
}

/// Attempts to fold a single operation into simpler statements.
fn fold(op: &Op, stmt: &Stmt, kernel: &Kernel) -> Option<Vec<Stmt>> {
    let copy = |dst: VarId, src: Operand| Stmt {
        dsts: vec![dst],
        op: Op::Copy { src },
        comment: None,
    };
    match op {
        Op::AddWide { a, b, carry_in } => {
            let no_carry = carry_in.is_none() || carry_in.map(|c| c.is_const(0)).unwrap_or(false);
            if !no_carry {
                return None;
            }
            if a.is_const(0) || b.is_const(0) {
                let other = if a.is_const(0) { *b } else { *a };
                return Some(vec![
                    copy(stmt.dsts[0], Operand::Const(0)),
                    copy(stmt.dsts[1], other),
                ]);
            }
            None
        }
        Op::Sub { a, b, borrow_in } => {
            let no_borrow =
                borrow_in.is_none() || borrow_in.map(|c| c.is_const(0)).unwrap_or(false);
            if no_borrow && b.is_const(0) {
                return Some(vec![copy(stmt.dsts[0], *a)]);
            }
            None
        }
        Op::MulWide { a, b } => {
            if a.is_const(0) || b.is_const(0) {
                return Some(vec![
                    copy(stmt.dsts[0], Operand::Const(0)),
                    copy(stmt.dsts[1], Operand::Const(0)),
                ]);
            }
            if a.is_const(1) || b.is_const(1) {
                let other = if a.is_const(1) { *b } else { *a };
                return Some(vec![
                    copy(stmt.dsts[0], Operand::Const(0)),
                    copy(stmt.dsts[1], other),
                ]);
            }
            None
        }
        Op::MulLow { a, b } => {
            if a.is_const(0) || b.is_const(0) {
                return Some(vec![copy(stmt.dsts[0], Operand::Const(0))]);
            }
            if b.is_const(1) {
                return Some(vec![copy(stmt.dsts[0], *a)]);
            }
            if a.is_const(1) {
                return Some(vec![copy(stmt.dsts[0], *b)]);
            }
            None
        }
        Op::Lt { a, b } => {
            if b.is_const(0) {
                // Nothing is less than zero.
                return Some(vec![copy(stmt.dsts[0], Operand::Const(0))]);
            }
            if let (Operand::Const(x), Operand::Const(y)) = (a, b) {
                return Some(vec![copy(stmt.dsts[0], Operand::Const((x < y) as u64))]);
            }
            None
        }
        Op::Eq { a, b } => {
            if let (Operand::Const(x), Operand::Const(y)) = (a, b) {
                return Some(vec![copy(stmt.dsts[0], Operand::Const((x == y) as u64))]);
            }
            None
        }
        Op::BoolAnd { a, b } => {
            if a.is_const(0) || b.is_const(0) {
                return Some(vec![copy(stmt.dsts[0], Operand::Const(0))]);
            }
            if a.is_const(1) {
                return Some(vec![copy(stmt.dsts[0], *b)]);
            }
            if b.is_const(1) {
                return Some(vec![copy(stmt.dsts[0], *a)]);
            }
            None
        }
        Op::BoolOr { a, b } => {
            if a.is_const(1) || b.is_const(1) {
                return Some(vec![copy(stmt.dsts[0], Operand::Const(1))]);
            }
            if a.is_const(0) {
                return Some(vec![copy(stmt.dsts[0], *b)]);
            }
            if b.is_const(0) {
                return Some(vec![copy(stmt.dsts[0], *a)]);
            }
            None
        }
        Op::Select {
            cond,
            if_true,
            if_false,
        } => {
            if cond.is_const(1) {
                return Some(vec![copy(stmt.dsts[0], *if_true)]);
            }
            if cond.is_const(0) {
                return Some(vec![copy(stmt.dsts[0], *if_false)]);
            }
            if if_true == if_false {
                return Some(vec![copy(stmt.dsts[0], *if_true)]);
            }
            None
        }
        Op::ShrMulti { words, shift } => {
            // Drop known-zero leading (most significant) words as long as the shift
            // still addresses the remaining width.
            let word_bits = words
                .iter()
                .find_map(|o| o.as_var().map(|v| kernel.ty(v).bits()))
                .unwrap_or(64);
            let mut trimmed = words.clone();
            while trimmed.len() > stmt.dsts.len()
                && trimmed.first().map(|w| w.is_const(0)).unwrap_or(false)
                && *shift < word_bits * (trimmed.len() as u32 - 1)
            {
                trimmed.remove(0);
            }
            if trimmed.len() != words.len() {
                return Some(vec![Stmt {
                    dsts: stmt.dsts.clone(),
                    op: Op::ShrMulti {
                        words: trimmed,
                        shift: *shift,
                    },
                    comment: stmt.comment.clone(),
                }]);
            }
            None
        }
        _ => None,
    }
}

/// Rewrites every operand of an operation through `f`.
fn map_operands(op: &Op, f: &dyn Fn(Operand) -> Operand) -> Op {
    match op {
        Op::Copy { src } => Op::Copy { src: f(*src) },
        Op::AddWide { a, b, carry_in } => Op::AddWide {
            a: f(*a),
            b: f(*b),
            carry_in: carry_in.map(&f),
        },
        Op::Sub { a, b, borrow_in } => Op::Sub {
            a: f(*a),
            b: f(*b),
            borrow_in: borrow_in.map(&f),
        },
        Op::MulWide { a, b } => Op::MulWide { a: f(*a), b: f(*b) },
        Op::MulLow { a, b } => Op::MulLow { a: f(*a), b: f(*b) },
        Op::Lt { a, b } => Op::Lt { a: f(*a), b: f(*b) },
        Op::Eq { a, b } => Op::Eq { a: f(*a), b: f(*b) },
        Op::BoolAnd { a, b } => Op::BoolAnd { a: f(*a), b: f(*b) },
        Op::BoolOr { a, b } => Op::BoolOr { a: f(*a), b: f(*b) },
        Op::Select {
            cond,
            if_true,
            if_false,
        } => Op::Select {
            cond: f(*cond),
            if_true: f(*if_true),
            if_false: f(*if_false),
        },
        Op::ShrMulti { words, shift } => Op::ShrMulti {
            words: words.iter().map(|w| f(*w)).collect(),
            shift: *shift,
        },
        Op::AddMod { a, b, q } => Op::AddMod {
            a: f(*a),
            b: f(*b),
            q: f(*q),
        },
        Op::SubMod { a, b, q } => Op::SubMod {
            a: f(*a),
            b: f(*b),
            q: f(*q),
        },
        Op::MulModBarrett { a, b, q, mu, mbits } => Op::MulModBarrett {
            a: f(*a),
            b: f(*b),
            q: f(*q),
            mu: f(*mu),
            mbits: *mbits,
        },
        Op::MulAddMod {
            a,
            b,
            c,
            q,
            mu,
            mbits,
        } => Op::MulAddMod {
            a: f(*a),
            b: f(*b),
            c: f(*c),
            q: f(*q),
            mu: f(*mu),
            mbits: *mbits,
        },
        Op::MacReduceMod {
            pairs,
            q,
            mu,
            mbits,
            radix,
            recip,
        } => Op::MacReduceMod {
            pairs: pairs.iter().map(|(a, b)| (f(*a), f(*b))).collect(),
            q: *q,
            mu: *mu,
            mbits: *mbits,
            radix: *radix,
            recip: *recip,
        },
    }
}

/// Removes statements none of whose destinations are ever used (transitively).
pub fn eliminate_dead_code(kernel: &Kernel) -> (Kernel, bool) {
    let outputs: HashSet<VarId> = kernel.outputs.iter().copied().collect();
    let mut live: HashSet<VarId> = outputs.clone();
    let mut keep = vec![false; kernel.body.len()];
    // Walk backwards: a statement is live if any destination is live; its operands then
    // become live.
    for (i, stmt) in kernel.body.iter().enumerate().rev() {
        if stmt.dsts.iter().any(|d| live.contains(d)) {
            keep[i] = true;
            for o in stmt.op.operands() {
                if let Operand::Var(v) = o {
                    live.insert(v);
                }
            }
            // A destination written here no longer needs earlier definitions unless it
            // is also read by this same statement; for simplicity (and correctness) we
            // keep it live, which only ever retains more code than strictly necessary.
        }
    }
    let mut out = kernel.clone();
    let changed = keep.iter().any(|k| !k);
    out.body = kernel
        .body
        .iter()
        .zip(&keep)
        .filter(|(_, k)| **k)
        .map(|(s, _)| s.clone())
        .collect();
    (out, changed)
}

/// Runs simplification, fusion, and dead-code elimination to a fixed point
/// (bounded at 16 rounds, far beyond what any generated kernel needs). A second
/// call on the result is a no-op: each round's passes report whether they
/// changed anything, and the loop exits on the first quiet round.
pub fn optimize(kernel: &Kernel) -> Kernel {
    let mut current = kernel.clone();
    for _ in 0..16 {
        let (simplified, c1) = simplify(&current);
        let (fused, c3) = crate::fuse::fuse(&simplified);
        let (cleaned, c2) = eliminate_dead_code(&fused);
        current = cleaned;
        if !c1 && !c2 && !c3 {
            break;
        }
    }
    current
}

/// Removes unused parameters (those never read by any statement). Used after pruning so
/// that fully-zero padded words disappear from the generated signature, exactly as the
/// paper's generated code for 381/753-bit inputs omits the zero words.
pub fn drop_unused_params(kernel: &Kernel) -> Kernel {
    let mut used: HashSet<VarId> = HashSet::new();
    for stmt in &kernel.body {
        for o in stmt.op.operands() {
            if let Operand::Var(v) = o {
                used.insert(v);
            }
        }
    }
    let mut out = kernel.clone();
    out.params.retain(|p| used.contains(p));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use moma_ir::Ty;
    use moma_ir::{interp, KernelBuilder};

    /// Builds a kernel computing (a*b) where b's "high half" is a known-zero parameter,
    /// mimicking a padded input.
    fn padded_mul_kernel() -> (Kernel, HashMap<VarId, u32>) {
        let mut kb = KernelBuilder::new("padded");
        let a = kb.param("a", Ty::UInt(64));
        let b_hi = kb.param("b_hi", Ty::UInt(64));
        let b_lo = kb.param("b_lo", Ty::UInt(64));
        let hi1 = kb.local("hi1", Ty::UInt(64));
        let lo1 = kb.local("lo1", Ty::UInt(64));
        let hi2 = kb.local("hi2", Ty::UInt(64));
        let lo2 = kb.local("lo2", Ty::UInt(64));
        let f = kb.local("f", Ty::Flag);
        let out = kb.output("out", Ty::UInt(64));
        kb.push(
            vec![hi1, lo1],
            Op::MulWide {
                a: a.into(),
                b: b_lo.into(),
            },
        );
        kb.push(
            vec![hi2, lo2],
            Op::MulWide {
                a: a.into(),
                b: b_hi.into(),
            },
        );
        kb.push(
            vec![f, out],
            Op::AddWide {
                a: lo1.into(),
                b: lo2.into(),
                carry_in: None,
            },
        );
        let kernel = kb.build();
        let mut zt = HashMap::new();
        zt.insert(b_hi, 64u32); // the entire high word is known zero
        (kernel, zt)
    }

    #[test]
    fn pruning_plus_optimization_removes_zero_work() {
        let (kernel, zt) = padded_mul_kernel();
        let before = moma_ir::cost::static_counts(&kernel);
        let pruned = prune_known_zeros(&kernel, &zt);
        let optimized = optimize(&pruned);
        let after = moma_ir::cost::static_counts(&optimized);
        assert_eq!(before.get("mulwide"), 2);
        assert_eq!(
            after.get("mulwide"),
            1,
            "multiplication by the zero word must vanish"
        );
        assert!(after.total() < before.total());
        // Semantics preserved: out = low(a*b_lo) + 0.
        let r_before = interp::run(&kernel, &[7, 0, 1 << 40]).unwrap();
        let r_after = interp::run(&optimized, &[7, 0, 1 << 40]).unwrap();
        assert_eq!(r_before.outputs, r_after.outputs);
    }

    #[test]
    fn select_with_equal_arms_folds() {
        let mut kb = KernelBuilder::new("sel");
        let a = kb.param("a", Ty::UInt(64));
        let c = kb.param("c", Ty::Flag);
        let o = kb.output("o", Ty::UInt(64));
        kb.push(
            vec![o],
            Op::Select {
                cond: c.into(),
                if_true: a.into(),
                if_false: a.into(),
            },
        );
        let (s, changed) = simplify(&kb.build());
        assert!(changed);
        assert!(matches!(s.body[0].op, Op::Copy { .. }));
    }

    #[test]
    fn dce_removes_unreachable_statements() {
        let mut kb = KernelBuilder::new("dce");
        let a = kb.param("a", Ty::UInt(64));
        let unused = kb.local("unused", Ty::UInt(64));
        let also_unused = kb.local("also_unused", Ty::UInt(64));
        let o = kb.output("o", Ty::UInt(64));
        kb.push(
            vec![unused],
            Op::MulLow {
                a: a.into(),
                b: a.into(),
            },
        );
        kb.push(
            vec![also_unused],
            Op::MulLow {
                a: unused.into(),
                b: a.into(),
            },
        );
        kb.push(vec![o], Op::Copy { src: a.into() });
        let (out, changed) = eliminate_dead_code(&kb.build());
        assert!(changed);
        assert_eq!(out.body.len(), 1);
    }

    #[test]
    fn boolean_folds() {
        let mut kb = KernelBuilder::new("bools");
        let f = kb.param("f", Ty::Flag);
        let o1 = kb.output("o1", Ty::Flag);
        let o2 = kb.output("o2", Ty::Flag);
        let o3 = kb.output("o3", Ty::Flag);
        kb.push(
            vec![o1],
            Op::BoolAnd {
                a: f.into(),
                b: Operand::Const(0),
            },
        );
        kb.push(
            vec![o2],
            Op::BoolOr {
                a: f.into(),
                b: Operand::Const(1),
            },
        );
        kb.push(
            vec![o3],
            Op::BoolOr {
                a: f.into(),
                b: Operand::Const(0),
            },
        );
        let (s, _) = simplify(&kb.build());
        assert!(matches!(
            s.body[0].op,
            Op::Copy {
                src: Operand::Const(0)
            }
        ));
        assert!(matches!(
            s.body[1].op,
            Op::Copy {
                src: Operand::Const(1)
            }
        ));
        assert!(matches!(
            s.body[2].op,
            Op::Copy {
                src: Operand::Var(_)
            }
        ));
    }

    #[test]
    fn optimize_is_idempotent_including_fusion() {
        // One fixpoint run must leave nothing for a second run to do — on a plain
        // word-level kernel and on a fusable constant-modulus MAC chain alike.
        let (kernel, zt) = padded_mul_kernel();
        let once = optimize(&prune_known_zeros(&kernel, &zt));
        assert_eq!(optimize(&once), once);

        let q = (1u64 << 40) - 87;
        let mbits = 40u32;
        let mu = ((1u128 << (2 * mbits as u64 + 3)) / q as u128) as u64;
        let mut kb = KernelBuilder::new("mac_fix");
        let x = kb.param("x", Ty::UInt(44));
        let y = kb.param("y", Ty::UInt(44));
        let acc = kb.local("acc", Ty::UInt(44));
        let out = kb.output("out", Ty::UInt(44));
        kb.push(
            vec![acc],
            Op::MulAddMod {
                a: x.into(),
                b: Operand::Const(3),
                c: Operand::Const(0),
                q: Operand::Const(q),
                mu: Operand::Const(mu),
                mbits,
            },
        );
        kb.push(
            vec![out],
            Op::MulAddMod {
                a: y.into(),
                b: Operand::Const(5),
                c: acc.into(),
                q: Operand::Const(q),
                mu: Operand::Const(mu),
                mbits,
            },
        );
        let chain = kb.build();
        let once = optimize(&chain);
        assert_eq!(
            moma_ir::cost::static_counts(&once).get("reducewide"),
            1,
            "the chain must fuse into a single accumulation loop"
        );
        assert_eq!(optimize(&once), once);
        // Semantics preserved through the fused fixpoint.
        let inputs = [(1u64 << 44) - 1, 987654321];
        assert_eq!(
            interp::run(&once, &inputs).unwrap().outputs,
            interp::run(&chain, &inputs).unwrap().outputs
        );
    }

    #[test]
    fn unused_params_are_dropped() {
        let (kernel, zt) = padded_mul_kernel();
        let optimized = optimize(&prune_known_zeros(&kernel, &zt));
        let trimmed = drop_unused_params(&optimized);
        assert_eq!(trimmed.params.len(), 2); // b_hi disappeared
        assert!(trimmed
            .params
            .iter()
            .all(|p| trimmed.var(*p).name != "b_hi"));
    }
}
