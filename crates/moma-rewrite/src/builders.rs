//! Builders for the high-level kernels used in the paper's evaluation.
//!
//! Each builder produces a [`HighLevelKernel`]: a kernel whose body is a handful of
//! high-level modular operations over the *padded* power-of-two width, together with
//! the bookkeeping the lowering pipeline needs (the actual value width, so that the
//! zero-pruning optimization of §4 can remove the operations on known-zero words).

use moma_ir::{Kernel, KernelBuilder, Op, Ty, VarId};

/// The cryptographic kernels the paper evaluates (Figures 2–5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelOp {
    /// `c = (a + b) mod q` — element of vector addition (Figure 2).
    ModAdd,
    /// `c = (a - b) mod q` — element of vector subtraction (Figure 2).
    ModSub,
    /// `c = (a · b) mod q` — element of point-wise vector multiplication (Figure 2).
    ModMul,
    /// `y = (a · x + y) mod q` — element of the BLAS `axpy` operation (Figure 2).
    Axpy,
    /// The radix-2 NTT butterfly: `(x, y) -> (x + w·y mod q, x - w·y mod q)`
    /// (one modular addition, one subtraction, one multiplication — §5.3).
    Butterfly,
}

impl KernelOp {
    /// Short name used for kernel naming and reporting.
    pub fn name(&self) -> &'static str {
        match self {
            KernelOp::ModAdd => "modadd",
            KernelOp::ModSub => "modsub",
            KernelOp::ModMul => "modmul",
            KernelOp::Axpy => "axpy",
            KernelOp::Butterfly => "butterfly",
        }
    }

    /// All kernels, in the order the evaluation reports them.
    pub fn all() -> [KernelOp; 5] {
        [
            KernelOp::ModMul,
            KernelOp::ModAdd,
            KernelOp::ModSub,
            KernelOp::Axpy,
            KernelOp::Butterfly,
        ]
    }
}

/// A request for a generated kernel: which operation, at which input bit-width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KernelSpec {
    /// The operation.
    pub op: KernelOp,
    /// The actual input bit-width λ (need not be a power of two: 381- and 753-bit style
    /// widths are padded and pruned as in §4).
    pub bits: u32,
}

impl KernelSpec {
    /// Creates a spec.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or below 8.
    pub fn new(op: KernelOp, bits: u32) -> Self {
        assert!(bits >= 8, "input bit-width must be at least 8 bits");
        KernelSpec { op, bits }
    }

    /// The padded power-of-two width the kernel is generated at.
    pub fn padded_bits(&self) -> u32 {
        self.bits.next_power_of_two()
    }

    /// The modulus bit-width: the paper uses moduli of `k − 4` bits for `k`-bit kernels
    /// so that the Barrett constant fits in `k` bits (§5.2).
    pub fn modulus_bits(&self) -> u32 {
        self.bits - 4
    }
}

/// A built high-level kernel plus the metadata the lowering pipeline needs.
#[derive(Debug, Clone)]
pub struct HighLevelKernel {
    /// The kernel (all values at the padded power-of-two width).
    pub kernel: Kernel,
    /// The spec this kernel was built from.
    pub spec: KernelSpec,
    /// Number of known-zero high bits in every parameter (padded − actual width).
    pub zero_top_bits: u32,
}

/// Builds the high-level kernel for a spec.
///
/// Every parameter and output has the padded power-of-two width; the difference between
/// the padded width and the requested width is recorded in
/// [`HighLevelKernel::zero_top_bits`] and exploited by zero pruning during lowering.
pub fn build(spec: &KernelSpec) -> HighLevelKernel {
    let width = Ty::UInt(spec.padded_bits());
    let mbits = spec.modulus_bits();
    let name = format!("moma_{}_{}", spec.op.name(), spec.bits);
    let mut kb = KernelBuilder::new(name);

    let kernel = match spec.op {
        KernelOp::ModAdd | KernelOp::ModSub => {
            let a = kb.param("a", width);
            let b = kb.param("b", width);
            let q = kb.param("q", width);
            let c = kb.output("c", width);
            let op = if spec.op == KernelOp::ModAdd {
                Op::AddMod {
                    a: a.into(),
                    b: b.into(),
                    q: q.into(),
                }
            } else {
                Op::SubMod {
                    a: a.into(),
                    b: b.into(),
                    q: q.into(),
                }
            };
            kb.push_commented(
                vec![c],
                op,
                format!(
                    "c = (a {} b) mod q",
                    if spec.op == KernelOp::ModAdd {
                        "+"
                    } else {
                        "-"
                    }
                ),
            );
            kb.build()
        }
        KernelOp::ModMul => {
            let a = kb.param("a", width);
            let b = kb.param("b", width);
            let q = kb.param("q", width);
            let mu = kb.param("mu", width);
            let c = kb.output("c", width);
            kb.push_commented(
                vec![c],
                Op::MulModBarrett {
                    a: a.into(),
                    b: b.into(),
                    q: q.into(),
                    mu: mu.into(),
                    mbits,
                },
                "c = (a * b) mod q, Barrett",
            );
            kb.build()
        }
        KernelOp::Axpy => {
            // y' = (a * x + y) mod q
            let a = kb.param("a", width);
            let x = kb.param("x", width);
            let y = kb.param("y", width);
            let q = kb.param("q", width);
            let mu = kb.param("mu", width);
            let ax = kb.local("ax", width);
            let y_out = kb.output("y_out", width);
            kb.push_commented(
                vec![ax],
                Op::MulModBarrett {
                    a: a.into(),
                    b: x.into(),
                    q: q.into(),
                    mu: mu.into(),
                    mbits,
                },
                "ax = a * x mod q",
            );
            kb.push_commented(
                vec![y_out],
                Op::AddMod {
                    a: ax.into(),
                    b: y.into(),
                    q: q.into(),
                },
                "y = ax + y mod q",
            );
            kb.build()
        }
        KernelOp::Butterfly => {
            // (x, y) -> (x + w*y, x - w*y) mod q: the Cooley–Tukey decimation-in-time
            // butterfly the NTT executes (n log n)/2 times.
            let x = kb.param("x", width);
            let y = kb.param("y", width);
            let w = kb.param("w", width);
            let q = kb.param("q", width);
            let mu = kb.param("mu", width);
            let wy = kb.local("wy", width);
            let x_out = kb.output("x_out", width);
            let y_out = kb.output("y_out", width);
            kb.push_commented(
                vec![wy],
                Op::MulModBarrett {
                    a: w.into(),
                    b: y.into(),
                    q: q.into(),
                    mu: mu.into(),
                    mbits,
                },
                "wy = w * y mod q",
            );
            kb.push_commented(
                vec![x_out],
                Op::AddMod {
                    a: x.into(),
                    b: wy.into(),
                    q: q.into(),
                },
                "x' = x + wy mod q",
            );
            kb.push_commented(
                vec![y_out],
                Op::SubMod {
                    a: x.into(),
                    b: wy.into(),
                    q: q.into(),
                },
                "y' = x - wy mod q",
            );
            kb.build()
        }
    };

    HighLevelKernel {
        kernel,
        spec: *spec,
        zero_top_bits: spec.padded_bits() - spec.bits,
    }
}

/// Convenience accessor: the parameter ids of a built kernel, by name.
pub fn param_by_name(kernel: &Kernel, name: &str) -> Option<VarId> {
    kernel
        .params
        .iter()
        .copied()
        .find(|p| kernel.var(*p).name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use moma_ir::validate::validate;

    #[test]
    fn spec_padding_and_modulus_bits() {
        let s = KernelSpec::new(KernelOp::ModMul, 384);
        assert_eq!(s.padded_bits(), 512);
        assert_eq!(s.modulus_bits(), 380);
        let s = KernelSpec::new(KernelOp::ModAdd, 256);
        assert_eq!(s.padded_bits(), 256);
        assert_eq!(s.modulus_bits(), 252);
    }

    #[test]
    fn all_builders_produce_valid_kernels() {
        for op in KernelOp::all() {
            for bits in [64u32, 128, 256, 381, 384, 753, 768, 1024] {
                let hl = build(&KernelSpec::new(op, bits));
                validate(&hl.kernel).unwrap_or_else(|e| panic!("{:?} {bits}: {e}", op));
                assert_eq!(hl.kernel.max_width(), bits.next_power_of_two());
                assert_eq!(hl.zero_top_bits, bits.next_power_of_two() - bits);
            }
        }
    }

    #[test]
    fn butterfly_has_three_modular_ops() {
        let hl = build(&KernelSpec::new(KernelOp::Butterfly, 256));
        assert_eq!(hl.kernel.len(), 3);
        assert_eq!(hl.kernel.outputs.len(), 2);
        assert_eq!(hl.kernel.params.len(), 5);
    }

    #[test]
    fn param_lookup() {
        let hl = build(&KernelSpec::new(KernelOp::ModAdd, 128));
        assert!(param_by_name(&hl.kernel, "q").is_some());
        assert!(param_by_name(&hl.kernel, "nonexistent").is_none());
    }

    #[test]
    #[should_panic(expected = "at least 8 bits")]
    fn tiny_widths_rejected() {
        KernelSpec::new(KernelOp::ModAdd, 4);
    }
}
