//! Dataflow-graph fusion: collapse producer→consumer element-wise chains into
//! single statements with loop-level accumulation.
//!
//! The compiled executor pays for every intermediate value twice — once to write
//! the register, once to feed the next modular reduction (a `u128` division in
//! the bytecode loop). This pass removes both costs for the chains the RNS layer
//! actually generates:
//!
//! 1. **mul→add** — a [`Op::MulModBarrett`] whose single use is the addend of an
//!    [`Op::AddMod`] under the same modulus becomes one [`Op::MulAddMod`].
//! 2. **MAC chains** — a run of constant-modulus [`Op::MulAddMod`] statements
//!    linked through their single-use accumulator operands (the shape of
//!    `BaseConvPlan::mac_kernel_ir`) becomes one [`Op::MacReduceMod`]
//!    accumulation loop: the whole Σᵢ aᵢ·bᵢ runs in a 128-bit register and is
//!    reduced *once*, division-free.
//! 3. **lone muls** — any remaining constant-modulus [`Op::MulModBarrett`]
//!    becomes a single-pair accumulation, trading the executor's `u128 %` for
//!    the Barrett sequence.
//!
//! Fusion is conservative: it runs only on SSA kernels (every variable written
//! exactly once — true of everything the builders and the lowering pipeline
//! produce), and a chain is rewritten only when the 128-bit accumulator provably
//! cannot overflow for the operands' declared widths, the same static bound the
//! validator re-checks. When the bound cannot be shown, the chain is left
//! unfused — correctness never depends on this pass firing.
//!
//! Statements made dead by fusion (the producers whose only consumer was
//! rewritten) are left in place for [`crate::passes::eliminate_dead_code`],
//! which runs alongside this pass in [`crate::passes::optimize`].

use moma_ir::{Kernel, Op, Operand, Stmt, Ty, VarId};
use std::collections::{HashMap, HashSet};

/// Applies one round of fusion. Returns the new kernel and whether anything
/// changed.
pub fn fuse(kernel: &Kernel) -> (Kernel, bool) {
    if !is_ssa(kernel) {
        return (kernel.clone(), false);
    }
    let mut body = kernel.body.clone();
    let a = fuse_mul_into_add(kernel, &mut body);
    let b = fuse_mac_chains(kernel, &mut body);
    let c = fuse_lone_mulmods(kernel, &mut body);
    if !(a || b || c) {
        return (kernel.clone(), false);
    }
    let mut out = kernel.clone();
    out.body = body;
    (out, true)
}

/// True when every variable is written at most once and no parameter is ever
/// rewritten — the precondition under which "defined before the consumer" implies
/// "still holds that value at the consumer".
fn is_ssa(kernel: &Kernel) -> bool {
    let mut written = vec![false; kernel.vars.len()];
    for p in &kernel.params {
        written[p.0] = true;
    }
    for stmt in &kernel.body {
        for d in &stmt.dsts {
            if written[d.0] {
                return false;
            }
            written[d.0] = true;
        }
    }
    true
}

/// Number of operand occurrences of each variable in `body`.
fn use_counts(kernel: &Kernel, body: &[Stmt]) -> Vec<u32> {
    let mut counts = vec![0u32; kernel.vars.len()];
    for stmt in body {
        for o in stmt.op.operands() {
            if let Some(v) = o.as_var() {
                counts[v.0] += 1;
            }
        }
    }
    counts
}

/// Rule 1: `t = (a·b) mod q; d = (t + y) mod q` with `t` used only here becomes
/// `d = (a·b + y) mod q`, eliminating the intermediate (the producer is left for
/// dead-code elimination).
fn fuse_mul_into_add(kernel: &Kernel, body: &mut [Stmt]) -> bool {
    let uses = use_counts(kernel, body);
    let outputs: HashSet<VarId> = kernel.outputs.iter().copied().collect();
    let mut def: HashMap<VarId, usize> = HashMap::new();
    let mut changed = false;
    for j in 0..body.len() {
        if let Op::AddMod { a, b, q } = body[j].op {
            for (t, other) in [(a, b), (b, a)] {
                let Operand::Var(v) = t else { continue };
                if uses[v.0] != 1 || outputs.contains(&v) {
                    continue;
                }
                let Some(&i) = def.get(&v) else { continue };
                let Op::MulModBarrett {
                    a: ma,
                    b: mb,
                    q: mq,
                    mu,
                    mbits,
                } = body[i].op
                else {
                    continue;
                };
                if mq != q {
                    continue;
                }
                body[j].op = Op::MulAddMod {
                    a: ma,
                    b: mb,
                    c: other,
                    q,
                    mu,
                    mbits,
                };
                changed = true;
                break;
            }
        }
        for d in &body[j].dsts {
            def.insert(*d, j);
        }
    }
    changed
}

/// A run of constant-modulus multiply-accumulates linked through single-use
/// accumulator operands.
struct Chain {
    q: u64,
    pairs: Vec<(Operand, Operand)>,
    last: usize,
}

/// Rule 2: a chain `t₁ = (a₁·b₁ + seed) mod q; t₂ = (a₂·b₂ + t₁) mod q; …`
/// becomes one accumulation loop `d = (Σᵢ aᵢ·bᵢ [+ seed·1]) mod q` at the final
/// statement's position. A zero seed is dropped; any other seed folds in as the
/// extra pair `(seed, 1)`.
fn fuse_mac_chains(kernel: &Kernel, body: &mut [Stmt]) -> bool {
    let uses = use_counts(kernel, body);
    let outputs: HashSet<VarId> = kernel.outputs.iter().copied().collect();
    let mut chains: HashMap<VarId, Chain> = HashMap::new();
    let mut consumed: HashSet<VarId> = HashSet::new();
    for (i, stmt) in body.iter().enumerate() {
        if let Op::MulAddMod {
            a,
            b,
            c,
            q: Operand::Const(qv),
            ..
        } = stmt.op
        {
            let extends = match c {
                Operand::Var(v) if uses[v.0] == 1 && !outputs.contains(&v) => {
                    chains.get(&v).filter(|chain| chain.q == qv).map(|_| v)
                }
                _ => None,
            };
            let pairs = match extends {
                Some(v) => {
                    consumed.insert(v);
                    let mut pairs = chains[&v].pairs.clone();
                    pairs.push((a, b));
                    pairs
                }
                None if c.is_const(0) => vec![(a, b)],
                None => vec![(c, Operand::Const(1)), (a, b)],
            };
            chains.insert(
                stmt.dsts[0],
                Chain {
                    q: qv,
                    pairs,
                    last: i,
                },
            );
        }
    }
    let mut changed = false;
    for (dst, chain) in chains {
        if consumed.contains(&dst) {
            continue;
        }
        if let Some(op) = macreduce_op(kernel, chain.q, &chain.pairs, dst) {
            body[chain.last].op = op;
            changed = true;
        }
    }
    changed
}

/// Rule 3: any remaining constant-modulus multiplication becomes a single-pair
/// accumulation (always within the 128-bit bound for word operands).
fn fuse_lone_mulmods(kernel: &Kernel, body: &mut [Stmt]) -> bool {
    let mut changed = false;
    for stmt in body.iter_mut() {
        if let Op::MulModBarrett {
            a,
            b,
            q: Operand::Const(qv),
            ..
        } = stmt.op
        {
            if let Some(op) = macreduce_op(kernel, qv, &[(a, b)], stmt.dsts[0]) {
                stmt.op = op;
                changed = true;
            }
        }
    }
    changed
}

/// Builds a validated [`Op::MacReduceMod`] for `pairs` under `q`, or `None` when
/// the modulus is outside the single-word Barrett domain, the destination cannot
/// hold a residue, or the accumulator bound cannot be shown statically (the same
/// checks the validator enforces — fusion must never produce an invalid kernel).
fn macreduce_op(kernel: &Kernel, q: u64, pairs: &[(Operand, Operand)], dst: VarId) -> Option<Op> {
    if q < 2 {
        return None;
    }
    let mbits = 64 - q.leading_zeros();
    if mbits > 60 {
        return None;
    }
    match kernel.ty(dst) {
        Ty::UInt(dw) if dw >= mbits => {}
        _ => return None,
    }
    let bound = |o: &Operand| -> Option<u128> {
        match o {
            Operand::Const(v) => Some(*v as u128),
            Operand::Var(v) => match kernel.ty(*v) {
                Ty::UInt(w) if w < 128 => Some((1u128 << w) - 1),
                _ => None,
            },
        }
    };
    let mut worst: u128 = 0;
    for (a, b) in pairs {
        worst = worst.checked_add(bound(a)?.checked_mul(bound(b)?)?)?;
    }
    let q128 = q as u128;
    Some(Op::MacReduceMod {
        pairs: pairs.to_vec(),
        q,
        mu: ((1u128 << (2 * mbits + 3)) / q128) as u64,
        mbits,
        radix: ((1u128 << 64) % q128) as u64,
        recip: ((1u128 << 64) / q128) as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use moma_ir::{interp, validate::validate, KernelBuilder};

    fn barrett_operands(q: u64) -> (Operand, u32) {
        let mbits = 64 - q.leading_zeros();
        let mu = ((1u128 << (2 * mbits + 3)) / q as u128) as u64;
        (Operand::Const(mu), mbits)
    }

    /// The `mac_kernel_ir` shape: out = Σᵢ xᵢ·cᵢ mod q over a zero seed.
    fn mac_chain_kernel(q: u64, terms: u64) -> Kernel {
        let (mu, mbits) = barrett_operands(q);
        let mut kb = KernelBuilder::new("chain");
        let xs: Vec<VarId> = (0..terms)
            .map(|i| kb.param(format!("x{i}"), Ty::UInt(56)))
            .collect();
        let out = kb.output("out", Ty::UInt(56));
        let mut acc = Operand::Const(0);
        for (i, x) in xs.iter().enumerate() {
            let dst = if i + 1 == xs.len() {
                out
            } else {
                kb.local(format!("acc{i}"), Ty::UInt(56))
            };
            kb.push(
                vec![dst],
                Op::MulAddMod {
                    a: (*x).into(),
                    b: Operand::Const(1000 + i as u64),
                    c: acc,
                    q: Operand::Const(q),
                    mu,
                    mbits,
                },
            );
            acc = dst.into();
        }
        kb.build()
    }

    #[test]
    fn mac_chain_collapses_to_one_accumulation_loop() {
        let q = (1u64 << 52) - 47;
        let k = mac_chain_kernel(q, 6);
        let (fused, changed) = fuse(&k);
        assert!(changed);
        validate(&fused).unwrap();
        let loops: Vec<&Stmt> = fused
            .body
            .iter()
            .filter(|s| matches!(s.op, Op::MacReduceMod { .. }))
            .collect();
        assert_eq!(loops.len(), 1);
        if let Op::MacReduceMod { pairs, .. } = &loops[0].op {
            assert_eq!(pairs.len(), 6);
        }
        // Bit-identical to the unfused chain.
        let inputs: Vec<u64> = (0..6).map(|i| (1u64 << 52) - 1 - i).collect();
        assert_eq!(
            interp::run(&crate::passes::eliminate_dead_code(&fused).0, &inputs)
                .unwrap()
                .outputs,
            interp::run(&k, &inputs).unwrap().outputs
        );
    }

    #[test]
    fn mul_then_add_becomes_mac_then_accumulation() {
        let q = (1u64 << 31) - 1;
        let (mu, mbits) = barrett_operands(q);
        let mut kb = KernelBuilder::new("axpy_like");
        let s = kb.param("s", Ty::UInt(35));
        let x = kb.param("x", Ty::UInt(35));
        let y = kb.param("y", Ty::UInt(35));
        let t = kb.local("t", Ty::UInt(35));
        let out = kb.output("out", Ty::UInt(35));
        kb.push(
            vec![t],
            Op::MulModBarrett {
                a: s.into(),
                b: x.into(),
                q: Operand::Const(q),
                mu,
                mbits,
            },
        );
        kb.push(
            vec![out],
            Op::AddMod {
                a: t.into(),
                b: y.into(),
                q: Operand::Const(q),
            },
        );
        let k = kb.build();
        let (fused, changed) = fuse(&k);
        assert!(changed);
        // mul+add collapsed to a MulAddMod, then into an accumulation loop with
        // the addend folded as (y, 1).
        let last = &fused.body.last().unwrap().op;
        let Op::MacReduceMod { pairs, .. } = last else {
            panic!("expected an accumulation loop, got {last:?}");
        };
        assert_eq!(pairs.len(), 2);
        validate(&crate::passes::eliminate_dead_code(&fused).0).unwrap();
        for inputs in [[0u64, 0, 0], [q - 1, q - 1, q - 1], [12345, 6789, 424242]] {
            assert_eq!(
                interp::run(&crate::passes::eliminate_dead_code(&fused).0, &inputs)
                    .unwrap()
                    .outputs,
                interp::run(&k, &inputs).unwrap().outputs
            );
        }
    }

    #[test]
    fn overflow_risk_blocks_fusion() {
        // Three 64-bit×64-bit products cannot be bounded in a u128 accumulator,
        // so the chain must stay unfused rather than risk wrapping.
        let q = (1u64 << 52) - 47;
        let (mu, mbits) = barrett_operands(q);
        let mut kb = KernelBuilder::new("wide_chain");
        let xs: Vec<VarId> = (0..3)
            .map(|i| kb.param(format!("x{i}"), Ty::UInt(64)))
            .collect();
        let ys: Vec<VarId> = (0..3)
            .map(|i| kb.param(format!("y{i}"), Ty::UInt(64)))
            .collect();
        let out = kb.output("out", Ty::UInt(64));
        let mut acc = Operand::Const(0);
        for i in 0..3 {
            let dst = if i == 2 {
                out
            } else {
                kb.local(format!("acc{i}"), Ty::UInt(64))
            };
            kb.push(
                vec![dst],
                Op::MulAddMod {
                    a: xs[i].into(),
                    b: ys[i].into(),
                    c: acc,
                    q: Operand::Const(q),
                    mu,
                    mbits,
                },
            );
            acc = dst.into();
        }
        let k = kb.build();
        let (fused, changed) = fuse(&k);
        assert!(!changed);
        assert_eq!(fused.body.len(), k.body.len());
    }

    #[test]
    fn non_constant_modulus_is_left_alone() {
        let mut kb = KernelBuilder::new("var_q");
        let a = kb.param("a", Ty::UInt(64));
        let b = kb.param("b", Ty::UInt(64));
        let q = kb.param("q", Ty::UInt(64));
        let mu = kb.param("mu", Ty::UInt(64));
        let out = kb.output("out", Ty::UInt(64));
        kb.push(
            vec![out],
            Op::MulModBarrett {
                a: a.into(),
                b: b.into(),
                q: q.into(),
                mu: mu.into(),
                mbits: 52,
            },
        );
        let k = kb.build();
        let (_, changed) = fuse(&k);
        assert!(!changed);
    }
}
