//! The lowering driver: expansion → recursive splitting → pruning → optimization.

use crate::builders::HighLevelKernel;
use crate::expand::expand_modular_ops;
use crate::passes::{drop_unused_params, optimize, prune_known_zeros};
use crate::split::split_once;
use crate::LoweringConfig;
use moma_ir::{cost, Kernel, VarId};
use std::collections::HashMap;

/// Statistics for one stage of the recursive lowering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageInfo {
    /// The maximal integer width at the *end* of this stage.
    pub width: u32,
    /// Number of statements at the end of this stage.
    pub statements: usize,
}

/// The result of lowering a high-level kernel to machine words.
#[derive(Debug, Clone)]
pub struct Lowered {
    /// The machine-level kernel (every variable at most `word_bits` wide).
    pub kernel: Kernel,
    /// Per-stage statistics, outermost width first.
    pub stages: Vec<StageInfo>,
    /// The machine word width the kernel was lowered to.
    pub word_bits: u32,
}

impl Lowered {
    /// Static word-level operation counts of the final kernel.
    pub fn op_counts(&self) -> cost::OpCounts {
        cost::static_counts(&self.kernel)
    }

    /// Number of recursion steps that were required (§3.2: e.g. three steps for a
    /// 512-bit input on a 64-bit machine).
    pub fn recursion_steps(&self) -> usize {
        self.stages.len().saturating_sub(1)
    }
}

/// Lowers a high-level kernel to machine words according to `config`.
///
/// # Panics
///
/// Panics if the padded width is smaller than the machine word or the internal passes
/// produce an invalid kernel (which would be a bug; validation runs in debug builds).
pub fn lower(hl: &HighLevelKernel, config: &LoweringConfig) -> Lowered {
    let (lowered, _) = lower_impl(hl, config, false);
    lowered
}

/// Like [`lower`], but also returns a human-readable trace of the kernel after each
/// rewriting stage — the §4 worked example (Equations 30–34) as the tool actually
/// performs it.
pub fn lower_with_trace(
    hl: &HighLevelKernel,
    config: &LoweringConfig,
) -> (Lowered, Vec<(String, String)>) {
    lower_impl(hl, config, true)
}

fn lower_impl(
    hl: &HighLevelKernel,
    config: &LoweringConfig,
    trace: bool,
) -> (Lowered, Vec<(String, String)>) {
    assert!(
        hl.spec.padded_bits() >= config.word_bits,
        "kernel width {} is below the machine word width {}",
        hl.spec.padded_bits(),
        config.word_bits
    );
    let mut snapshots = Vec::new();
    let mut stages = Vec::new();

    if trace {
        snapshots.push((
            format!("input ({}-bit operands)", hl.spec.padded_bits()),
            hl.kernel.to_string(),
        ));
    }

    // Stage 0: expand the high-level modular operations (Equation 30 → Listing-style
    // word algebra at the full width).
    let mut kernel = expand_modular_ops(&hl.kernel);
    let mut zero_top: HashMap<VarId, u32> = hl
        .kernel
        .params
        .iter()
        .map(|p| (*p, hl.zero_top_bits))
        .collect();
    stages.push(StageInfo {
        width: kernel.max_width(),
        statements: kernel.len(),
    });
    if trace {
        snapshots.push((
            format!("after expansion at {} bits", kernel.max_width()),
            kernel.to_string(),
        ));
    }

    // Recursive splitting: rule (19) and friends until the machine word is reached.
    while kernel.max_width() > config.word_bits {
        let result = split_once(&kernel, &zero_top, config.mul_algorithm);
        kernel = result.kernel;
        zero_top = result.zero_top_bits;
        stages.push(StageInfo {
            width: kernel.max_width(),
            statements: kernel.len(),
        });
        if trace {
            snapshots.push((
                format!("after splitting to {} bits", kernel.max_width()),
                kernel.to_string(),
            ));
        }
    }

    // Optimization: zero pruning (non-power-of-two widths) and cleanup.
    if config.prune_zeros {
        kernel = prune_known_zeros(&kernel, &zero_top);
    }
    if config.simplify {
        kernel = optimize(&kernel);
        kernel = drop_unused_params(&kernel);
    }
    stages.push(StageInfo {
        width: kernel.max_width(),
        statements: kernel.len(),
    });
    if trace {
        snapshots.push(("after optimization".to_string(), kernel.to_string()));
    }

    debug_assert!(
        moma_ir::validate::validate(&kernel).is_ok(),
        "lowering produced an invalid kernel: {:?}",
        moma_ir::validate::validate(&kernel)
    );

    (
        Lowered {
            kernel,
            stages,
            word_bits: config.word_bits,
        },
        snapshots,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{build, KernelOp, KernelSpec};
    use crate::{LoweringConfig, MulAlgorithm};
    use moma_ir::validate::validate;

    #[test]
    fn recursion_depth_matches_paper_example() {
        // §3.2: a 512-bit input on a 64-bit machine needs three recursion steps
        // (512 → 256 → 128 → 64).
        let hl = build(&KernelSpec::new(KernelOp::ModAdd, 512));
        let lowered = lower(&hl, &LoweringConfig::default());
        assert_eq!(lowered.recursion_steps(), 3 + 1); // 3 splits + optimization stage
        assert!(lowered.kernel.is_machine_level(64));
        let widths: Vec<u32> = lowered.stages.iter().map(|s| s.width).collect();
        assert_eq!(widths, vec![512, 256, 128, 64, 64]);
    }

    #[test]
    fn all_kernels_lower_and_validate_at_all_word_widths() {
        for op in KernelOp::all() {
            for bits in [128u32, 256, 384] {
                for word_bits in [64u32, 32] {
                    let hl = build(&KernelSpec::new(op, bits));
                    let lowered = lower(&hl, &LoweringConfig::for_word_bits(word_bits));
                    validate(&lowered.kernel)
                        .unwrap_or_else(|e| panic!("{op:?} {bits} w{word_bits}: {e}"));
                    assert!(lowered.kernel.is_machine_level(word_bits));
                }
            }
        }
    }

    #[test]
    fn statement_count_grows_with_recursion_depth() {
        let config = LoweringConfig::default();
        let counts: Vec<u64> = [128u32, 256, 512, 1024]
            .iter()
            .map(|bits| {
                let hl = build(&KernelSpec::new(KernelOp::ModMul, *bits));
                lower(&hl, &config).op_counts().total()
            })
            .collect();
        assert!(counts.windows(2).all(|w| w[1] > w[0] * 2), "{counts:?}");
    }

    #[test]
    fn zero_pruning_shrinks_padded_kernels() {
        // 384-bit inputs live in a 512-bit container; pruning must remove a substantial
        // part of the work (the paper's §4 discussion of 381/753-bit inputs).
        let hl = build(&KernelSpec::new(KernelOp::ModMul, 384));
        let pruned = lower(&hl, &LoweringConfig::default());
        let unpruned = lower(
            &hl,
            &LoweringConfig {
                prune_zeros: false,
                ..LoweringConfig::default()
            },
        );
        assert!(
            pruned.op_counts().total() < unpruned.op_counts().total(),
            "pruned {} vs unpruned {}",
            pruned.op_counts().total(),
            unpruned.op_counts().total()
        );
        // The pruned 384-bit kernel must also be cheaper than a full 512-bit kernel.
        let full512 = lower(
            &build(&KernelSpec::new(KernelOp::ModMul, 512)),
            &LoweringConfig::default(),
        );
        assert!(pruned.op_counts().multiplications() < full512.op_counts().multiplications());
    }

    #[test]
    fn karatsuba_uses_fewer_multiplications() {
        let hl = build(&KernelSpec::new(KernelOp::ModMul, 256));
        let sb = lower(&hl, &LoweringConfig::default());
        let ka = lower(
            &hl,
            &LoweringConfig {
                mul_algorithm: MulAlgorithm::Karatsuba,
                ..LoweringConfig::default()
            },
        );
        assert!(ka.op_counts().multiplications() < sb.op_counts().multiplications());
        assert!(ka.op_counts().add_sub() > sb.op_counts().add_sub());
    }

    #[test]
    fn trace_contains_every_stage() {
        let hl = build(&KernelSpec::new(KernelOp::ModAdd, 128));
        let (_, trace) = lower_with_trace(&hl, &LoweringConfig::default());
        assert!(trace.len() >= 4);
        assert!(trace[0].0.contains("input"));
        assert!(trace.last().unwrap().0.contains("optimization"));
        assert!(trace.iter().all(|(_, text)| text.contains("kernel")));
    }
}
