//! The MoMA rewrite system — recursive lowering of multi-word modular arithmetic.
//!
//! This crate is the reproduction of the paper's central contribution (§3–§4): a
//! program-transformation pass that takes a kernel expressed over large integer data
//! types (128–1,024 bits) and rewrites it, *type by type*, into an equivalent
//! straight-line program over machine words.
//!
//! The pipeline mirrors the paper exactly:
//!
//! 1. **Kernel builders** ([`builders`]) produce the high-level kernels the evaluation
//!    uses — modular addition/subtraction/multiplication, the NTT butterfly, and the
//!    BLAS `axpy` element — as single high-level operations over `UInt(λ)`.
//! 2. **Expansion** ([`expand`]) rewrites each high-level modular operation at its
//!    native width into the mid-level operations of Table 1's right-hand sides:
//!    widening adds with explicit carries, widening multiplies, comparisons, conditional
//!    selects, and constant multi-word shifts (the Barrett sequence of Listing 4).
//! 3. **Type splitting** ([`split`]) applies rules (19)–(29) recursively: every value of
//!    the current maximal width `2ω` becomes a pair of `ω`-wide values and every
//!    operation is rewritten accordingly, until all values fit the machine word `ω₀`.
//! 4. **Optimization passes** ([`passes`]) perform the zero-pruning the paper describes
//!    for non-power-of-two bit-widths (381-, 753-bit style inputs), plus constant
//!    folding, copy propagation, and dead-code elimination.
//!
//! The driver ([`lower`], [`lower_with_trace`]) assembles these steps and reports
//! per-stage statistics.
//!
//! # Example
//!
//! ```
//! use moma_rewrite::{builders, lower, KernelOp, KernelSpec, LoweringConfig};
//!
//! // Generate a 256-bit modular multiplication kernel for a 64-bit machine.
//! let spec = KernelSpec::new(KernelOp::ModMul, 256);
//! let hl = builders::build(&spec);
//! let lowered = lower(&hl, &LoweringConfig::default());
//! assert!(lowered.kernel.is_machine_level(64));
//! // The generated code can now be emitted as CUDA-like C:
//! let cuda = moma_ir::emit::emit_cuda(&lowered.kernel).unwrap();
//! assert!(cuda.contains("__int128"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builders;
pub mod expand;
pub mod fuse;
pub mod passes;
pub mod rules;
pub mod split;

mod driver;

pub use builders::{HighLevelKernel, KernelOp, KernelSpec};
pub use driver::{lower, lower_with_trace, Lowered, StageInfo};

/// Choice of multiplication algorithm used when splitting a widening multiplication
/// (the paper's §5.4 ablation, Figure 5b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MulAlgorithm {
    /// Schoolbook: 4 half-width multiplications per product (Equation 8, rule (28)).
    #[default]
    Schoolbook,
    /// Karatsuba: 3 half-width multiplications plus extra additions (Equation 9).
    Karatsuba,
}

/// Configuration of the lowering pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoweringConfig {
    /// Machine word width ω₀ in bits (64 for the paper's GPUs; 32 and 16 are supported
    /// to model the "small machine word" hardware discussed in §7).
    pub word_bits: u32,
    /// Multiplication splitting rule.
    pub mul_algorithm: MulAlgorithm,
    /// Apply the zero-pruning optimization for padded (non-power-of-two) input widths.
    pub prune_zeros: bool,
    /// Run constant folding / copy propagation / dead-code elimination after lowering.
    pub simplify: bool,
}

impl Default for LoweringConfig {
    fn default() -> Self {
        LoweringConfig {
            word_bits: 64,
            mul_algorithm: MulAlgorithm::Schoolbook,
            prune_zeros: true,
            simplify: true,
        }
    }
}

impl LoweringConfig {
    /// A configuration for the given machine word width with all optimizations on.
    pub fn for_word_bits(word_bits: u32) -> Self {
        assert!(
            word_bits.is_power_of_two() && (16..=64).contains(&word_bits),
            "machine word width must be 16, 32, or 64 bits"
        );
        LoweringConfig {
            word_bits,
            ..Self::default()
        }
    }
}
