//! End-to-end correctness of the rewrite system: for every kernel, every evaluated
//! bit-width, both multiplication algorithms, and machine word widths of 64 and 32
//! bits, interpreting the generated (lowered) code must agree with the
//! arbitrary-precision oracle.

use moma_bignum::BigUint;
use moma_ir::interp;
use moma_rewrite::{builders, lower, KernelOp, KernelSpec, LoweringConfig, MulAlgorithm};
use proptest::prelude::*;
use std::collections::HashMap;

/// Packs a BigUint into the words of a lowered kernel parameter list.
///
/// A parameter named `x` that was recursively split appears as machine words named
/// `x_hi_hi…`, in most-significant-first order. We therefore collect, for each original
/// parameter, its word variables in declaration order and fill them most significant
/// first. Pruned (dropped) words are simply skipped.
fn pack_param(
    value: &BigUint,
    word_names: &[String],
    word_bits: u32,
    padded_bits: u32,
) -> Vec<u64> {
    // Produce the padded value as words, most significant first.
    let total_words = (padded_bits / word_bits) as usize;
    let limbs64 = value.to_limbs_le(padded_bits.div_ceil(64) as usize);
    let mut words_lsb_first: Vec<u64> = Vec::new();
    match word_bits {
        64 => words_lsb_first = limbs64,
        32 => {
            for l in limbs64 {
                words_lsb_first.push(l & 0xffff_ffff);
                words_lsb_first.push(l >> 32);
            }
        }
        _ => panic!("unsupported word width"),
    }
    words_lsb_first.resize(total_words, 0);
    let mut msb_first: Vec<u64> = words_lsb_first;
    msb_first.reverse();
    // Now assign to surviving names: names are in most-significant-first order too, but
    // some may have been pruned. We rely on the fact that pruning only ever removes
    // *leading* (most significant, known-zero) words.
    let skip = total_words - word_names.len();
    msb_first[skip..].to_vec()
}

/// Groups the lowered kernel's parameters by original parameter name prefix.
fn group_params(kernel: &moma_ir::Kernel, original: &[&str]) -> HashMap<String, Vec<String>> {
    let mut groups: HashMap<String, Vec<String>> = HashMap::new();
    for p in &kernel.params {
        let name = kernel.var(*p).name.clone();
        let root = original
            .iter()
            .find(|o| name == **o || name.starts_with(&format!("{o}_")))
            .unwrap_or_else(|| panic!("parameter {name} has no known root"));
        groups.entry((*root).to_string()).or_default().push(name);
    }
    groups
}

/// Unpacks the outputs (most significant word first) into a BigUint.
fn unpack_outputs(outputs: &[u64], word_bits: u32) -> BigUint {
    let mut acc = BigUint::zero();
    for &w in outputs {
        acc = (acc << word_bits) + BigUint::from(w);
    }
    acc
}

/// Deterministic pseudo-random modulus of exactly `bits` bits (odd, top bit set).
fn test_modulus(bits: u32, seed: u64) -> BigUint {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let limbs = bits.div_ceil(64) as usize;
    let mut v: Vec<u64> = (0..limbs).map(|_| next()).collect();
    let top_bits = bits - (limbs as u32 - 1) * 64;
    let top = &mut v[limbs - 1];
    if top_bits < 64 {
        *top &= (1u64 << top_bits) - 1;
    }
    *top |= 1u64 << (top_bits - 1);
    v[0] |= 1;
    BigUint::from_limbs_le(v)
}

/// Computes the Barrett constant for a modulus of `mbits` bits.
fn barrett_mu(q: &BigUint, mbits: u32) -> BigUint {
    (BigUint::from(1u64) << (2 * mbits + 3)) / q
}

/// Runs one spec at one configuration against the oracle.
fn check(op: KernelOp, bits: u32, word_bits: u32, alg: MulAlgorithm, a: &BigUint, b: &BigUint) {
    let spec = KernelSpec::new(op, bits);
    let hl = builders::build(&spec);
    let config = LoweringConfig {
        word_bits,
        mul_algorithm: alg,
        ..LoweringConfig::default()
    };
    let lowered = lower(&hl, &config);
    let kernel = &lowered.kernel;

    let mbits = spec.modulus_bits();
    let q = test_modulus(mbits, 0x5eed ^ (bits as u64) << 8 ^ word_bits as u64);
    let mu = barrett_mu(&q, mbits);
    let a = a % &q;
    let b = b % &q;

    // Build the oracle expectation.
    let expected: Vec<BigUint> = match op {
        KernelOp::ModAdd => vec![a.mod_add(&b, &q)],
        KernelOp::ModSub => vec![a.mod_sub(&b, &q)],
        KernelOp::ModMul => vec![a.mod_mul(&b, &q)],
        KernelOp::Axpy => {
            // y' = a*x + y, with x := b and y := a (arbitrary but deterministic choice).
            vec![a.mod_mul(&b, &q).mod_add(&a, &q)]
        }
        KernelOp::Butterfly => {
            let wy = a.mod_mul(&b, &q); // w := a, y := b ... see argument packing below
            vec![b.mod_add(&wy, &q), b.mod_sub(&wy, &q)]
        }
    };

    // Assemble the original-parameter value map.
    let values: Vec<(&str, BigUint)> = match op {
        KernelOp::ModAdd | KernelOp::ModSub => {
            vec![("a", a.clone()), ("b", b.clone()), ("q", q.clone())]
        }
        KernelOp::ModMul => vec![
            ("a", a.clone()),
            ("b", b.clone()),
            ("q", q.clone()),
            ("mu", mu.clone()),
        ],
        KernelOp::Axpy => vec![
            ("a", a.clone()),
            ("x", b.clone()),
            ("y", a.clone()),
            ("q", q.clone()),
            ("mu", mu.clone()),
        ],
        KernelOp::Butterfly => vec![
            ("x", b.clone()),
            ("y", b.clone()),
            ("w", a.clone()),
            ("q", q.clone()),
            ("mu", mu.clone()),
        ],
    };
    // Butterfly oracle above uses x=b, y=b, w=a: x' = x + w*y = b + a*b; y' = b - a*b.
    let expected = if op == KernelOp::Butterfly {
        let wy = a.mod_mul(&b, &q);
        vec![b.mod_add(&wy, &q), b.mod_sub(&wy, &q)]
    } else {
        expected
    };

    let roots: Vec<&str> = values.iter().map(|(n, _)| *n).collect();
    let groups = group_params(kernel, &roots);
    let mut inputs = Vec::new();
    for p in &kernel.params {
        let _ = p;
    }
    // Parameters appear grouped per original parameter, in original order; walk the
    // kernel's parameter list and fill values in order.
    let mut per_root_words: HashMap<String, std::collections::VecDeque<u64>> = HashMap::new();
    for (root, value) in &values {
        if let Some(names) = groups.get(*root) {
            let packed = pack_param(value, names, word_bits, spec.padded_bits());
            per_root_words.insert((*root).to_string(), packed.into());
        }
    }
    for p in &kernel.params {
        let name = kernel.var(*p).name.clone();
        let root = roots
            .iter()
            .find(|o| name == **o || name.starts_with(&format!("{o}_")))
            .unwrap();
        let w = per_root_words
            .get_mut(*root)
            .and_then(|dq| dq.pop_front())
            .unwrap_or_else(|| panic!("no value left for {name}"));
        inputs.push(w);
    }

    let result = interp::run(kernel, &inputs)
        .unwrap_or_else(|e| panic!("{op:?} {bits} w{word_bits} {alg:?}: {e}"));

    // Outputs: grouped per original output, most significant word first.
    let words_per_value = (spec.padded_bits() / word_bits) as usize;
    assert_eq!(result.outputs.len(), words_per_value * expected.len());
    for (i, exp) in expected.iter().enumerate() {
        let got = unpack_outputs(
            &result.outputs[i * words_per_value..(i + 1) * words_per_value],
            word_bits,
        );
        assert_eq!(
            &got, exp,
            "{op:?} bits={bits} word={word_bits} alg={alg:?} output {i}\n a={a:x}\n b={b:x}\n q={q:x}"
        );
    }
}

/// Strategy: a random value of at most `bits` bits.
fn value(bits: u32) -> impl Strategy<Value = BigUint> {
    prop::collection::vec(any::<u64>(), bits.div_ceil(64) as usize)
        .prop_map(move |v| BigUint::from_limbs_le(v).low_bits(bits))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn modadd_matches_oracle(a in value(256), b in value(256)) {
        for bits in [128u32, 256, 381] {
            check(KernelOp::ModAdd, bits, 64, MulAlgorithm::Schoolbook, &a, &b);
        }
        check(KernelOp::ModAdd, 128, 32, MulAlgorithm::Schoolbook, &a, &b);
    }

    #[test]
    fn modsub_matches_oracle(a in value(256), b in value(256)) {
        for bits in [128u32, 256, 384] {
            check(KernelOp::ModSub, bits, 64, MulAlgorithm::Schoolbook, &a, &b);
        }
        check(KernelOp::ModSub, 256, 32, MulAlgorithm::Schoolbook, &a, &b);
    }

    #[test]
    fn modmul_matches_oracle_schoolbook(a in value(512), b in value(512)) {
        for bits in [128u32, 256, 384, 512] {
            check(KernelOp::ModMul, bits, 64, MulAlgorithm::Schoolbook, &a, &b);
        }
    }

    #[test]
    fn modmul_matches_oracle_karatsuba(a in value(512), b in value(512)) {
        for bits in [128u32, 256, 512] {
            check(KernelOp::ModMul, bits, 64, MulAlgorithm::Karatsuba, &a, &b);
        }
    }

    #[test]
    fn modmul_matches_oracle_32_bit_words(a in value(256), b in value(256)) {
        check(KernelOp::ModMul, 128, 32, MulAlgorithm::Schoolbook, &a, &b);
        check(KernelOp::ModMul, 256, 32, MulAlgorithm::Karatsuba, &a, &b);
    }

    #[test]
    fn axpy_and_butterfly_match_oracle(a in value(256), b in value(256)) {
        for bits in [128u32, 256] {
            check(KernelOp::Axpy, bits, 64, MulAlgorithm::Schoolbook, &a, &b);
            check(KernelOp::Butterfly, bits, 64, MulAlgorithm::Schoolbook, &a, &b);
            check(KernelOp::Butterfly, bits, 64, MulAlgorithm::Karatsuba, &a, &b);
        }
    }

    #[test]
    fn non_power_of_two_widths_match_oracle(a in value(381), b in value(381)) {
        // The ZKP-style widths the paper highlights: 381 (BLS12-381) and 753 (MNT4753).
        check(KernelOp::ModMul, 381, 64, MulAlgorithm::Schoolbook, &a, &b);
        check(KernelOp::Butterfly, 381, 64, MulAlgorithm::Schoolbook, &a, &b);
    }
}

#[test]
fn large_widths_single_case() {
    // 768- and 1024-bit kernels are slower to lower; exercise them once outside proptest.
    let a = test_modulus(700, 42);
    let b = test_modulus(700, 43);
    check(KernelOp::ModMul, 768, 64, MulAlgorithm::Schoolbook, &a, &b);
    check(KernelOp::ModMul, 1024, 64, MulAlgorithm::Karatsuba, &a, &b);
    check(KernelOp::ModMul, 753, 64, MulAlgorithm::Schoolbook, &a, &b);
}
