//! Property tests for the NTT execution plans: the planned transforms must be
//! inverses of each other and must agree with the `O(n^2)` schoolbook oracle for
//! polynomial products, on random inputs across random sizes.

use moma_mp::MulAlgorithm;
use moma_ntt::params::NttParams;
use moma_ntt::plan::{NttPlan, NttPlan64};
use moma_ntt::polymul::ntt_polymul;
use moma_ntt::reference::schoolbook_polymul;
use moma_ntt::transform::Ntt64;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// NttPlan (multi-word): inverse ∘ forward is the identity.
    #[test]
    fn plan_forward_inverse_is_identity(seed in any::<u64>(), log_n in 1u32..7) {
        let n = 1usize << log_n;
        let params = NttParams::<2>::for_paper_modulus(n, 128, MulAlgorithm::Schoolbook);
        let plan = NttPlan::new(&params);
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<_> = (0..n).map(|_| params.ring.random_element(&mut rng)).collect();
        let mut work = data.clone();
        plan.forward(&mut work);
        plan.inverse(&mut work);
        prop_assert_eq!(work, data);
    }

    /// NttPlan64 (single-word, Shoup + lazy reduction): inverse ∘ forward is the
    /// identity and every intermediate output is fully reduced.
    #[test]
    fn plan64_forward_inverse_is_identity(seed in any::<u64>(), log_n in 1u32..10) {
        let n = 1usize << log_n;
        let plan = NttPlan64::new(n);
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<u64> = (0..n).map(|_| rng.gen::<u64>() % plan.ctx.q).collect();
        let mut work = data.clone();
        plan.forward(&mut work);
        prop_assert!(work.iter().all(|&x| x < plan.ctx.q), "forward output reduced");
        plan.inverse(&mut work);
        prop_assert!(work.iter().all(|&x| x < plan.ctx.q), "inverse output reduced");
        prop_assert_eq!(work, data);
    }

    /// The planned single-word transform agrees with the naive Barrett path.
    #[test]
    fn plan64_agrees_with_naive(seed in any::<u64>(), log_n in 1u32..9) {
        let n = 1usize << log_n;
        let ntt = Ntt64::new(n);
        let plan = NttPlan64::from_ntt(&ntt);
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<u64> = (0..n).map(|_| rng.gen::<u64>() % ntt.ctx.q).collect();
        let mut a = data.clone();
        let mut b = data;
        ntt.forward(&mut a);
        plan.forward(&mut b);
        prop_assert_eq!(a, b);
    }

    /// Planned polynomial multiplication equals the schoolbook product.
    #[test]
    fn planned_polymul_matches_schoolbook(
        seed in any::<u64>(),
        len_a in 1usize..24,
        len_b in 1usize..24,
    ) {
        let params = NttParams::<2>::for_paper_modulus(2, 128, MulAlgorithm::Schoolbook);
        let mut rng = StdRng::seed_from_u64(seed);
        let a: Vec<_> = (0..len_a).map(|_| params.ring.random_element(&mut rng)).collect();
        let b: Vec<_> = (0..len_b).map(|_| params.ring.random_element(&mut rng)).collect();
        let fast = ntt_polymul(128, MulAlgorithm::Schoolbook, &a, &b);
        let slow = schoolbook_polymul(&params, &a, &b);
        prop_assert_eq!(fast, slow);
    }
}
