//! Property tests for launcher-routed NTT stage execution: on random inputs and
//! sizes, dispatching each stage through the virtual-GPU launcher (one thread per
//! butterfly) must compute exactly what the inline plan loops compute.

use moma_mp::MulAlgorithm;
use moma_ntt::params::NttParams;
use moma_ntt::plan::{NttPlan, NttPlan64};
use moma_ntt::transform::butterfly_count;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Single-word path: launcher forward/inverse match the inline plan and
    /// compose to the identity, with fully reduced outputs.
    #[test]
    fn launcher64_matches_inline_plan(seed in any::<u64>(), log_n in 1u32..10) {
        let n = 1usize << log_n;
        let plan = NttPlan64::new(n);
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<u64> = (0..n).map(|_| rng.gen::<u64>() % plan.ctx.q).collect();
        let mut inline = data.clone();
        let mut launched = data.clone();
        plan.forward(&mut inline);
        let stats = plan.forward_on_launcher(&mut launched);
        prop_assert_eq!(&launched, &inline, "forward");
        prop_assert!(launched.iter().all(|&x| x < plan.ctx.q), "reduced");
        prop_assert_eq!(stats.threads as u64, butterfly_count(n) + n as u64);
        plan.inverse(&mut inline);
        plan.inverse_on_launcher(&mut launched);
        prop_assert_eq!(&launched, &inline, "inverse");
        prop_assert_eq!(launched, data, "identity");
    }

    /// Multi-word path (2 limbs / 128 bits): launcher stages match the inline
    /// plan and compose to the identity.
    #[test]
    fn launcher_multiword_matches_inline_plan(seed in any::<u64>(), log_n in 1u32..7) {
        let n = 1usize << log_n;
        let params = NttParams::<2>::for_paper_modulus(n, 128, MulAlgorithm::Schoolbook);
        let plan = NttPlan::new(&params);
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<_> = (0..n).map(|_| params.ring.random_element(&mut rng)).collect();
        let mut inline = data.clone();
        let mut launched = data.clone();
        plan.forward(&mut inline);
        plan.forward_on_launcher(&mut launched);
        prop_assert_eq!(&launched, &inline, "forward");
        plan.inverse(&mut inline);
        plan.inverse_on_launcher(&mut launched);
        prop_assert_eq!(&launched, &inline, "inverse");
        prop_assert_eq!(launched, data, "identity");
    }
}
