//! NTT-based polynomial multiplication — the `O(n log n)` path that motivates the NTT
//! kernel in FHE and ZKP workloads (§2.3).

use crate::plan::NttPlan;
use moma_mp::{MpUint, MulAlgorithm};

/// Multiplies two polynomials with coefficients in `Z_q` using the NTT.
///
/// The product degree determines the transform size (the next power of two at least
/// `a.len() + b.len() - 1`); an [`NttPlan`] is built once for that size over the
/// evaluation modulus and drives both forward transforms and the inverse, so the
/// three transforms share one set of precomputed twiddle tables.
///
/// # Panics
///
/// Panics if either polynomial is empty.
pub fn ntt_polymul<const L: usize>(
    bits: u32,
    alg: MulAlgorithm,
    a: &[MpUint<L>],
    b: &[MpUint<L>],
) -> Vec<MpUint<L>> {
    assert!(
        !a.is_empty() && !b.is_empty(),
        "polynomials must be non-empty"
    );
    let result_len = a.len() + b.len() - 1;
    let n = result_len.next_power_of_two().max(2);
    let plan = NttPlan::<L>::for_paper_modulus(n, bits, alg);
    let ring = &plan.ring;

    let mut fa = vec![MpUint::<L>::ZERO; n];
    let mut fb = vec![MpUint::<L>::ZERO; n];
    fa[..a.len()].copy_from_slice(a);
    fb[..b.len()].copy_from_slice(b);

    plan.forward(&mut fa);
    plan.forward(&mut fb);
    for i in 0..n {
        fa[i] = ring.mul(fa[i], fb[i]);
    }
    plan.inverse(&mut fa);
    fa.truncate(result_len);
    fa
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::NttParams;
    use crate::reference::schoolbook_polymul;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matches_schoolbook_at_128_bits() {
        let params = NttParams::<2>::for_paper_modulus(2, 128, MulAlgorithm::Schoolbook);
        let mut rng = StdRng::seed_from_u64(3);
        let a: Vec<_> = (0..33)
            .map(|_| params.ring.random_element(&mut rng))
            .collect();
        let b: Vec<_> = (0..17)
            .map(|_| params.ring.random_element(&mut rng))
            .collect();
        let fast = ntt_polymul(128, MulAlgorithm::Schoolbook, &a, &b);
        let slow = schoolbook_polymul(&params, &a, &b);
        assert_eq!(fast, slow);
    }

    #[test]
    fn matches_schoolbook_at_256_bits_karatsuba() {
        let params = NttParams::<4>::for_paper_modulus(2, 256, MulAlgorithm::Schoolbook);
        let mut rng = StdRng::seed_from_u64(4);
        let a: Vec<_> = (0..20)
            .map(|_| params.ring.random_element(&mut rng))
            .collect();
        let b: Vec<_> = (0..20)
            .map(|_| params.ring.random_element(&mut rng))
            .collect();
        let fast = ntt_polymul(256, MulAlgorithm::Karatsuba, &a, &b);
        let slow = schoolbook_polymul(&params, &a, &b);
        assert_eq!(fast, slow);
    }

    #[test]
    fn multiplication_by_one_is_identity() {
        let params = NttParams::<2>::for_paper_modulus(2, 128, MulAlgorithm::Schoolbook);
        let mut rng = StdRng::seed_from_u64(5);
        let a: Vec<_> = (0..8)
            .map(|_| params.ring.random_element(&mut rng))
            .collect();
        let one = vec![MpUint::ONE];
        assert_eq!(ntt_polymul(128, MulAlgorithm::Schoolbook, &a, &one), a);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_polynomial_rejected() {
        let one = vec![MpUint::<2>::ONE];
        ntt_polymul(128, MulAlgorithm::Schoolbook, &[], &one);
    }
}
