//! Stage-level batched NTT execution on the simulated GPU launcher.
//!
//! The inline plan paths ([`NttPlan::forward`], [`NttPlan64::forward`]) walk the
//! butterfly stages as serial host loops. The paper instead maps **one CUDA thread
//! per butterfly** and launches each stage as a grid, with grid synchronization
//! between stages (§5.1). This module reproduces that execution shape on the
//! virtual-GPU launcher: every stage reads the plan's precomputed twiddles through
//! the [`NttPlan64::stage`] / [`NttPlan::stage`] accessors and dispatches its
//! butterflies through [`moma_gpu::launch_indexed`] / [`moma_gpu::launch_map`];
//! the join at the end of each launch is the stage barrier.
//!
//! Two execution strategies, chosen by element width:
//!
//! * **Single word** ([`NttPlan64`]): the data lives in a `Vec<AtomicU64>` for the
//!   duration of the transform. Within one stage every butterfly reads and writes
//!   only its own pair of slots, so relaxed atomics are just the safe-Rust spelling
//!   of CUDA's disjoint global-memory accesses, and the transform stays genuinely
//!   in place. Butterflies use the same Shoup multiplication and `[0, 4q)` lazy
//!   reduction as the inline path; one final element-parallel pass normalizes.
//! * **Multi word** ([`NttPlan`]): each stage is a [`moma_gpu::launch_map`] that
//!   returns the `n/2` butterfly output pairs (one ring multiplication each), which
//!   are then scattered back — the double-buffered formulation, since `MpUint`
//!   values cannot be updated atomically.
//!
//! **Batched transforms** ([`NttPlan64::forward_batch_on_launcher`]) run many
//! same-size transforms through *one* launch per stage with grid = batch × n/2 —
//! the paper's batched NTT shape. The per-stage barrier is thereby amortized over
//! the whole batch: the launch count of a batched transform is `log2 n + 1`
//! regardless of the batch size (see [`moma_gpu::LaunchStats::launches`]), where
//! launching the transforms one by one pays `batch × (log2 n + 1)`.
//!
//! On a many-core host the stage launches spread the butterflies across workers;
//! on the single-vCPU CI container they degrade to the inline loop plus launch
//! bookkeeping, which is exactly the overhead `reproduce bench` records as the
//! `ntt_launcher` entry.

use crate::plan::{NttPlan, NttPlan64};
use crate::transform::bit_reverse_permute;
use moma_gpu::launch::{launch_chunks, launch_indexed, launch_map, LaunchStats};
use moma_gpu::pool::BufferPool;
use moma_mp::MpUint;
use std::sync::atomic::{AtomicU64, Ordering};

/// Maps a butterfly index `t ∈ [0, n/2)` of a stage with half-length `m` to the
/// data index of its upper input; the lower input sits `m` slots later.
#[inline]
fn butterfly_base(t: usize, m: usize) -> usize {
    let log_m = m.trailing_zeros();
    ((t >> log_m) << (log_m + 1)) | (t & (m - 1))
}

impl NttPlan64 {
    /// In-place forward transform with every stage dispatched through
    /// [`launch_indexed`], one virtual thread per butterfly. Inputs must be
    /// reduced (`< q`); outputs are reduced. Returns the accumulated launch
    /// statistics of all stages plus the final normalize pass.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.n`.
    pub fn forward_on_launcher(&self, data: &mut [u64]) -> LaunchStats {
        assert_eq!(
            data.len(),
            self.n,
            "data length must equal the transform size"
        );
        self.forward_batch_on_launcher(data)
    }

    /// In-place inverse transform (with `1/n` scaling) with every stage
    /// dispatched through [`launch_indexed`]. Inputs must be reduced; outputs are
    /// reduced.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.n`.
    pub fn inverse_on_launcher(&self, data: &mut [u64]) -> LaunchStats {
        assert_eq!(
            data.len(),
            self.n,
            "data length must equal the transform size"
        );
        self.inverse_batch_on_launcher(data)
    }

    /// Forward-transforms a whole batch of `data.len() / n` transforms in place,
    /// with each butterfly stage of **all** transforms dispatched as one launch
    /// (grid = batch × n/2, one virtual thread per butterfly) — the paper's
    /// batched NTT. The per-stage grid barrier is paid once per stage, not once
    /// per transform: the returned statistics report `log2 n + 1` launches
    /// however large the batch is.
    ///
    /// Inputs must be reduced (`< q`); outputs are reduced.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a non-zero multiple of `self.n`.
    pub fn forward_batch_on_launcher(&self, data: &mut [u64]) -> LaunchStats {
        let cells: Vec<AtomicU64> = std::iter::repeat_with(AtomicU64::default)
            .take(data.len())
            .collect();
        let mut stats = self.forward_batch_in(data, &cells);
        stats.allocs += usize::from(!data.is_empty());
        stats
    }

    /// [`NttPlan64::forward_batch_on_launcher`] with the atomic working plane
    /// acquired from (and returned to) `pool` instead of the allocator. The
    /// returned statistics count pool *misses* in the window as allocations, so
    /// a warm pool reports `allocs == 0`.
    pub fn forward_batch_on_launcher_pooled(
        &self,
        data: &mut [u64],
        pool: &BufferPool,
    ) -> LaunchStats {
        let before = pool.misses();
        let cells = pool.acquire_cells(data.len());
        let mut stats = self.forward_batch_in(data, &cells);
        pool.recycle_cells(cells);
        stats.allocs += (pool.misses() - before) as usize;
        stats
    }

    /// Inverse-transforms a whole batch of `data.len() / n` transforms in place
    /// (with `1/n` scaling), one launch per butterfly stage across the whole
    /// batch. Inputs must be reduced; outputs are reduced.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a non-zero multiple of `self.n`.
    pub fn inverse_batch_on_launcher(&self, data: &mut [u64]) -> LaunchStats {
        let cells: Vec<AtomicU64> = std::iter::repeat_with(AtomicU64::default)
            .take(data.len())
            .collect();
        let mut stats = self.inverse_batch_in(data, &cells);
        stats.allocs += usize::from(!data.is_empty());
        stats
    }

    /// [`NttPlan64::inverse_batch_on_launcher`] with the atomic working plane
    /// acquired from (and returned to) `pool`; `allocs` reports the pool-miss
    /// delta of the window.
    pub fn inverse_batch_on_launcher_pooled(
        &self,
        data: &mut [u64],
        pool: &BufferPool,
    ) -> LaunchStats {
        let before = pool.misses();
        let cells = pool.acquire_cells(data.len());
        let mut stats = self.inverse_batch_in(data, &cells);
        pool.recycle_cells(cells);
        stats.allocs += (pool.misses() - before) as usize;
        stats
    }

    /// Stages plus the normalize pass, on a caller-provided working plane. The
    /// normalize pass writes `data` in place through [`launch_chunks`] (chunk
    /// length 1, so the thread count still equals the element count): no output
    /// plane is allocated.
    fn forward_batch_in(&self, data: &mut [u64], cells: &[AtomicU64]) -> LaunchStats {
        let mut stats = self.run_stages_batched(data, true, cells);
        let q = self.ctx.q;
        let two_q = self.two_q();
        let pass = launch_chunks(data, 1, |i, out| {
            let mut v = cells[i].load(Ordering::Relaxed);
            if v >= two_q {
                v -= two_q;
            }
            if v >= q {
                v -= q;
            }
            out[0] = v;
        });
        stats.accumulate(pass);
        stats
    }

    /// Stages plus the scaling pass (which doubles as the normalize pass, as in
    /// the inline plan), on a caller-provided working plane.
    fn inverse_batch_in(&self, data: &mut [u64], cells: &[AtomicU64]) -> LaunchStats {
        let mut stats = self.run_stages_batched(data, false, cells);
        let q = self.ctx.q;
        let pass = if let Some(tw) = self.twist() {
            // Negacyclic: the per-index ψ^{-i}·n^{-1} factor unfolds the twist
            // inside the same scaling multiply — still one pass, one launch.
            let n = self.n;
            launch_chunks(data, 1, |i, out| {
                let j = i % n;
                let t = self.ctx.mul_mod_shoup_lazy(
                    cells[i].load(Ordering::Relaxed),
                    tw.inverse_scale.twiddles[j],
                    tw.inverse_scale.shoup[j],
                );
                out[0] = if t >= q { t - q } else { t };
            })
        } else {
            let (n_inv, n_inv_shoup) = self.n_inv_pair();
            launch_chunks(data, 1, |i, out| {
                let t = self.ctx.mul_mod_shoup_lazy(
                    cells[i].load(Ordering::Relaxed),
                    n_inv,
                    n_inv_shoup,
                );
                out[0] = if t >= q { t - q } else { t };
            })
        };
        stats.accumulate(pass);
        stats
    }

    /// Runs the butterfly stages of every transform in the batch on the
    /// launcher — one launch per stage covering the whole batch — leaving the
    /// results (values lazily reduced in `[0, 4q)`) in the caller-provided
    /// working plane and returning the accumulated stage statistics.
    ///
    /// # Panics
    ///
    /// Panics if `cells.len() != data.len()` or `data` is not a non-zero
    /// multiple of the transform size.
    fn run_stages_batched(
        &self,
        data: &mut [u64],
        forward: bool,
        cells: &[AtomicU64],
    ) -> LaunchStats {
        assert!(
            !data.is_empty() && data.len() % self.n == 0,
            "data length must be a non-zero multiple of the transform size"
        );
        assert_eq!(
            cells.len(),
            data.len(),
            "working plane length must equal the data length"
        );
        let batch = data.len() / self.n;
        let half = self.n / 2;
        for transform in data.chunks_exact_mut(self.n) {
            bit_reverse_permute(transform);
        }
        for (cell, &x) in cells.iter().zip(data.iter()) {
            cell.store(x, Ordering::Relaxed);
        }
        let mut stats = LaunchStats::default();
        let q = self.ctx.q;
        let two_q = self.two_q();
        let mut m = 1;
        // A negacyclic forward runs its folded first stage here: each butterfly
        // input is multiplied by its slot's ψ^{rev(i)} twist factor (lazy Shoup
        // product, [0, 2q)) before the add/sub — the same launch the plain
        // stage-1 butterflies would have used, with the twist riding along.
        if forward {
            if let Some(tw) = self.twist() {
                let round = launch_indexed(batch * half, |t| {
                    let base = (t / half) * self.n;
                    let bf = t % half;
                    let i = base + 2 * bf;
                    let k = i + 1;
                    let (j0, j1) = (2 * bf, 2 * bf + 1);
                    let x = cells[i].load(Ordering::Relaxed);
                    let y = cells[k].load(Ordering::Relaxed);
                    let hi0 = ((tw.forward.shoup[j0] as u128 * x as u128) >> 64) as u64;
                    let t0 = tw.forward.twiddles[j0]
                        .wrapping_mul(x)
                        .wrapping_sub(hi0.wrapping_mul(q));
                    let hi1 = ((tw.forward.shoup[j1] as u128 * y as u128) >> 64) as u64;
                    let t1 = tw.forward.twiddles[j1]
                        .wrapping_mul(y)
                        .wrapping_sub(hi1.wrapping_mul(q));
                    cells[i].store(t0 + t1, Ordering::Relaxed);
                    cells[k].store(t0 + two_q - t1, Ordering::Relaxed);
                });
                stats.accumulate(round);
                m = 2;
            }
        }
        while m < self.n {
            let stage = self.stage(forward, m);
            let round = launch_indexed(batch * half, |t| {
                // Thread t handles butterfly t % (n/2) of transform t / (n/2).
                let base = (t / half) * self.n;
                let bf = t % half;
                let i = base + butterfly_base(bf, m);
                let k = i + m;
                let j = bf & (m - 1);
                // Harvey's lazy butterfly, identical to the inline hot loop: fold
                // x into [0, 2q), take the lazy Shoup product t = w·y mod q in
                // [0, 2q), and emit x + t and x − t + 2q, both < 4q.
                let mut x = cells[i].load(Ordering::Relaxed);
                if x >= two_q {
                    x -= two_q;
                }
                let y = cells[k].load(Ordering::Relaxed);
                let hi = ((stage.shoup[j] as u128 * y as u128) >> 64) as u64;
                let t = stage.twiddles[j]
                    .wrapping_mul(y)
                    .wrapping_sub(hi.wrapping_mul(q));
                cells[i].store(x + t, Ordering::Relaxed);
                cells[k].store(x + two_q - t, Ordering::Relaxed);
            });
            stats.accumulate(round);
            m <<= 1;
        }
        stats
    }
}

impl<const L: usize> NttPlan<L> {
    /// Forward transform with every stage dispatched through [`launch_map`], one
    /// virtual thread per butterfly (each producing its output pair, scattered
    /// back between stages).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.n`.
    pub fn forward_on_launcher(&self, data: &mut [MpUint<L>]) -> LaunchStats {
        self.run_stages_on_launcher(data, true)
    }

    /// Inverse transform (with `1/n` scaling) with every stage dispatched through
    /// [`launch_map`].
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.n`.
    pub fn inverse_on_launcher(&self, data: &mut [MpUint<L>]) -> LaunchStats {
        let mut stats = self.run_stages_on_launcher(data, false);
        let n_inv = self.n_inv();
        let (scaled, pass) = launch_map(self.n, |i| self.ring.mul(data[i], n_inv));
        stats.accumulate(pass);
        data.copy_from_slice(&scaled);
        stats
    }

    fn run_stages_on_launcher(&self, data: &mut [MpUint<L>], forward: bool) -> LaunchStats {
        assert_eq!(
            data.len(),
            self.n,
            "data length must equal the transform size"
        );
        bit_reverse_permute(data);
        let mut stats = LaunchStats::default();
        let mut m = 1;
        while m < self.n {
            let twiddles = self.stage(forward, m);
            let (pairs, stage) = launch_map(self.n / 2, |t| {
                let i = butterfly_base(t, m);
                let x = data[i];
                let wy = self.ring.mul(twiddles[t & (m - 1)], data[i + m]);
                (self.ring.add(x, wy), self.ring.sub(x, wy))
            });
            stats.accumulate(stage);
            for (t, &(hi, lo)) in pairs.iter().enumerate() {
                let i = butterfly_base(t, m);
                data[i] = hi;
                data[i + m] = lo;
            }
            m <<= 1;
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::NttParams;
    use crate::transform::butterfly_count;
    use moma_mp::MulAlgorithm;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn butterfly_index_mapping_covers_every_pair_once() {
        let n = 16;
        for m in [1usize, 2, 4, 8] {
            let mut seen = vec![0u32; n];
            for t in 0..n / 2 {
                let i = butterfly_base(t, m);
                seen[i] += 1;
                seen[i + m] += 1;
            }
            assert!(seen.iter().all(|&c| c == 1), "m = {m}: {seen:?}");
        }
    }

    #[test]
    fn launcher64_matches_inline_plan() {
        let plan = NttPlan64::new(256);
        let mut rng = StdRng::seed_from_u64(91);
        let data: Vec<u64> = (0..256).map(|_| rng.gen::<u64>() % plan.ctx.q).collect();
        let mut inline = data.clone();
        let mut launched = data.clone();
        plan.forward(&mut inline);
        let stats = plan.forward_on_launcher(&mut launched);
        assert_eq!(launched, inline, "forward must match the inline plan");
        // (n/2)·log2 n butterflies plus the n-element normalize pass.
        assert_eq!(stats.threads as u64, butterfly_count(256) + 256);
        plan.inverse(&mut inline);
        plan.inverse_on_launcher(&mut launched);
        assert_eq!(launched, inline, "inverse must match the inline plan");
        assert_eq!(launched, data, "inverse ∘ forward must be the identity");
    }

    #[test]
    fn launcher64_outputs_are_fully_reduced() {
        let plan = NttPlan64::new(128);
        let mut rng = StdRng::seed_from_u64(92);
        let mut data: Vec<u64> = (0..128).map(|_| rng.gen::<u64>() % plan.ctx.q).collect();
        plan.forward_on_launcher(&mut data);
        assert!(data.iter().all(|&x| x < plan.ctx.q));
        plan.inverse_on_launcher(&mut data);
        assert!(data.iter().all(|&x| x < plan.ctx.q));
    }

    #[test]
    fn batched_launcher_matches_per_transform_launcher() {
        let n = 128;
        let batch = 5;
        let plan = NttPlan64::new(n);
        let mut rng = StdRng::seed_from_u64(94);
        let data: Vec<u64> = (0..batch * n)
            .map(|_| rng.gen::<u64>() % plan.ctx.q)
            .collect();
        let mut batched = data.clone();
        let stats = plan.forward_batch_on_launcher(&mut batched);
        // One launch per stage plus the normalize pass, independent of batch.
        assert_eq!(stats.launches, n.trailing_zeros() as usize + 1);
        assert_eq!(
            stats.threads as u64,
            batch as u64 * butterfly_count(n) + (batch * n) as u64
        );
        let mut single = data.clone();
        let mut single_launches = 0;
        for transform in single.chunks_exact_mut(n) {
            single_launches += plan.forward_on_launcher(transform).launches;
        }
        assert_eq!(batched, single, "batched forward must match per-transform");
        assert_eq!(single_launches, batch * (n.trailing_zeros() as usize + 1));
        let inv_stats = plan.inverse_batch_on_launcher(&mut batched);
        assert_eq!(inv_stats.launches, n.trailing_zeros() as usize + 1);
        assert_eq!(
            batched, data,
            "batched inverse ∘ forward must be the identity"
        );
    }

    #[test]
    fn launcher_multiword_matches_inline_plan() {
        let params = NttParams::<2>::for_paper_modulus(64, 128, MulAlgorithm::Schoolbook);
        let plan = NttPlan::new(&params);
        let mut rng = StdRng::seed_from_u64(93);
        let data: Vec<_> = (0..64)
            .map(|_| params.ring.random_element(&mut rng))
            .collect();
        let mut inline = data.clone();
        let mut launched = data.clone();
        plan.forward(&mut inline);
        plan.forward_on_launcher(&mut launched);
        assert_eq!(launched, inline, "forward must match the inline plan");
        plan.inverse(&mut inline);
        plan.inverse_on_launcher(&mut launched);
        assert_eq!(launched, inline, "inverse must match the inline plan");
        assert_eq!(launched, data);
    }

    #[test]
    fn negacyclic_launcher_matches_inline_plan() {
        let n = 128;
        let batch = 3;
        let plan = NttPlan64::negacyclic(12289, n);
        let mut rng = StdRng::seed_from_u64(96);
        let data: Vec<u64> = (0..batch * n)
            .map(|_| rng.gen::<u64>() % plan.ctx.q)
            .collect();
        let mut launched = data.clone();
        let stats = plan.forward_batch_on_launcher(&mut launched);
        // The folded twist stage replaces the plain stage 1: still one launch
        // per stage plus the normalize pass.
        assert_eq!(stats.launches, n.trailing_zeros() as usize + 1);
        let mut inline = data.clone();
        for transform in inline.chunks_exact_mut(n) {
            plan.forward(transform);
        }
        assert_eq!(launched, inline, "negacyclic forward must match inline");
        let inv_stats = plan.inverse_batch_on_launcher(&mut launched);
        assert_eq!(inv_stats.launches, n.trailing_zeros() as usize + 1);
        assert_eq!(
            launched, data,
            "negacyclic batched inverse ∘ forward must be the identity"
        );
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn launcher_wrong_length_panics() {
        let plan = NttPlan64::new(64);
        let mut data = vec![0u64; 32];
        plan.forward_on_launcher(&mut data);
    }

    #[test]
    #[should_panic(expected = "multiple of the transform size")]
    fn batched_launcher_rejects_ragged_batches() {
        let plan = NttPlan64::new(64);
        let mut data = vec![0u64; 96];
        plan.forward_batch_on_launcher(&mut data);
    }

    #[test]
    fn unpooled_batch_reports_one_plane_allocation() {
        let plan = NttPlan64::new(64);
        let mut data = vec![1u64; 128];
        assert_eq!(plan.forward_batch_on_launcher(&mut data).allocs, 1);
        assert_eq!(plan.inverse_batch_on_launcher(&mut data).allocs, 1);
    }

    #[test]
    fn pooled_batch_matches_unpooled_and_is_allocation_free_when_warm() {
        let plan = NttPlan64::new(128);
        let pool = moma_gpu::BufferPool::new();
        let mut rng = StdRng::seed_from_u64(95);
        let data: Vec<u64> = (0..3 * 128)
            .map(|_| rng.gen::<u64>() % plan.ctx.q)
            .collect();
        let mut plain = data.clone();
        let mut pooled = data.clone();
        plan.forward_batch_on_launcher(&mut plain);
        // Cold pool: the first acquire misses, and the miss is the alloc count.
        let cold = plan.forward_batch_on_launcher_pooled(&mut pooled, &pool);
        assert_eq!(pooled, plain, "pooled forward must match the heap path");
        assert_eq!(cold.allocs, 1, "a cold pool allocates the plane once");
        plan.inverse_batch_on_launcher(&mut plain);
        let warm = plan.inverse_batch_on_launcher_pooled(&mut pooled, &pool);
        assert_eq!(pooled, plain, "pooled inverse must match the heap path");
        assert_eq!(
            warm.allocs, 0,
            "a warm pool serves the plane without allocating"
        );
        assert_eq!(
            pooled, data,
            "pooled inverse ∘ forward must be the identity"
        );
        // Steady state: many more rounds, zero further allocations.
        for _ in 0..5 {
            assert_eq!(
                plan.forward_batch_on_launcher_pooled(&mut pooled, &pool)
                    .allocs,
                0
            );
            assert_eq!(
                plan.inverse_batch_on_launcher_pooled(&mut pooled, &pool)
                    .allocs,
                0
            );
        }
        assert_eq!(pooled, data);
    }
}
