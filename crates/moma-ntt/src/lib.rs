//! Number theoretic transforms over multi-word prime fields.
//!
//! The NTT is the flagship kernel of the paper's evaluation (Figures 1, 3, 4, 5): an
//! `n`-point transform over `Z_q` built from `(n/2)·log2 n` butterflies, each of which
//! performs one modular multiplication, one modular addition, and one modular
//! subtraction. This crate provides:
//!
//! * [`params`] — NTT-friendly prime moduli of every evaluated bit-width (all of the
//!   form `c·2^32 + 1`, so every power-of-two transform size up to `2^32` is supported)
//!   and root-of-unity generation;
//! * [`transform`] — the iterative radix-2 Cooley–Tukey forward and inverse transforms
//!   over [`moma_mp::MpUint`] elements, plus a 64-bit single-word variant;
//! * [`plan`] — precomputed execution plans: bit-reversed twiddle tables built once
//!   per (modulus, n), with Shoup precomputed quotients and lazy reduction on the
//!   single-word path — the hot-path entry points for repeated transforms;
//! * [`launcher`] — stage-level batched execution of the plans on the simulated
//!   GPU launcher: each stage dispatches one virtual thread per butterfly through
//!   `moma_gpu::launch_indexed`/`launch_map`, the paper's §5.1 execution shape;
//! * [`mod@reference`] — the `O(n^2)` direct DFT used as a correctness oracle;
//! * [`polymul`] — NTT-based polynomial multiplication (the application motivating the
//!   kernel in FHE/ZKP workloads).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod launcher;
pub mod params;
pub mod plan;
pub mod polymul;
pub mod reference;
pub mod transform;

pub use params::NttParams;
pub use plan::{NttPlan, NttPlan64, NttRestoreError, Stage64};
pub use transform::{forward, inverse, Ntt64};
