//! Iterative radix-2 Cooley–Tukey NTT (decimation in time).

use crate::params::NttParams;
use moma_mp::single::SingleBarrett;
use moma_mp::MpUint;
use rand::SeedableRng;

/// Permutes `data` into bit-reversed order in place.
pub fn bit_reverse_permute<T>(data: &mut [T]) {
    let n = data.len();
    assert!(n.is_power_of_two(), "length must be a power of two");
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u64).reverse_bits() >> (64 - bits);
        let j = j as usize;
        if i < j {
            data.swap(i, j);
        }
    }
}

/// Derives every per-stage root for an `n`-point transform from one power ladder.
///
/// Stage `len` of the decimation-in-time loop needs `w_len = root^(n/len)`, a primitive
/// `len`-th root of unity. Those exponents are successive powers of two, so the whole
/// set is one squaring chain: `roots[k]` (for stage `len = 2^(k+1)`) is
/// `roots[k+1]` squared, starting from `roots[log2 n − 1] = root`. This replaces the
/// full `ring.pow` modular exponentiation the old loop ran once per stage —
/// `log2 n` squarings instead of `log2 n` square-and-multiply chains.
pub(crate) fn stage_roots<const L: usize>(
    ring: &moma_mp::ModRing<L>,
    root: MpUint<L>,
    n: usize,
) -> Vec<MpUint<L>> {
    let stages = n.trailing_zeros() as usize;
    let mut roots = vec![MpUint::<L>::ONE; stages];
    let mut cur = root;
    for slot in roots.iter_mut().rev() {
        *slot = cur;
        cur = ring.mul(cur, cur);
    }
    roots
}

/// Single-word counterpart of [`stage_roots`]: `roots[k]` is `root^(n / 2^(k+1))`,
/// the stage root for `len = 2^(k+1)`, derived by one squaring ladder.
pub(crate) fn stage_roots_u64(ctx: &SingleBarrett, root: u64, n: usize) -> Vec<u64> {
    let stages = n.trailing_zeros() as usize;
    let mut roots = vec![1u64; stages];
    let mut cur = root;
    for slot in roots.iter_mut().rev() {
        *slot = cur;
        cur = ctx.mul_mod(cur, cur);
    }
    roots
}

fn transform_in_place<const L: usize>(
    params: &NttParams<L>,
    root: MpUint<L>,
    data: &mut [MpUint<L>],
) {
    let ring = &params.ring;
    let n = params.n;
    bit_reverse_permute(data);
    let roots = stage_roots(ring, root, n);
    let mut len = 2;
    let mut stage = 0;
    while len <= n {
        // w_len = root^(n/len): a primitive len-th root of unity, off the ladder.
        let w_len = roots[stage];
        let mut start = 0;
        while start < n {
            let mut w = MpUint::<L>::ONE;
            for j in 0..len / 2 {
                let x = data[start + j];
                let wy = ring.mul(w, data[start + j + len / 2]);
                data[start + j] = ring.add(x, wy);
                data[start + j + len / 2] = ring.sub(x, wy);
                w = ring.mul(w, w_len);
            }
            start += len;
        }
        len <<= 1;
        stage += 1;
    }
}

/// In-place forward NTT of `data` (length `params.n`).
///
/// Each stage executes `n/2` independent butterflies — the unit of parallelism the
/// paper assigns to CUDA threads (§5.1). The butterfly is exactly the kernel produced
/// by `moma_rewrite::builders::KernelOp::Butterfly`: one modular multiplication by the
/// twiddle factor, one modular addition, one modular subtraction.
///
/// This is the *naive* path: it derives stage roots on the fly (from one power
/// ladder) and walks the twiddle chain serially inside each block. Repeated
/// transforms of the same size should build an [`crate::plan::NttPlan`] once and
/// reuse its precomputed tables instead.
///
/// # Panics
///
/// Panics if `data.len() != params.n`.
pub fn forward<const L: usize>(params: &NttParams<L>, data: &mut [MpUint<L>]) {
    assert_eq!(
        data.len(),
        params.n,
        "data length must equal the transform size"
    );
    transform_in_place(params, params.omega, data);
}

/// In-place inverse NTT of `data`, including the `1/n` scaling.
///
/// # Panics
///
/// Panics if `data.len() != params.n`.
pub fn inverse<const L: usize>(params: &NttParams<L>, data: &mut [MpUint<L>]) {
    assert_eq!(
        data.len(),
        params.n,
        "data length must equal the transform size"
    );
    transform_in_place(params, params.omega_inv, data);
    let ring = &params.ring;
    for x in data.iter_mut() {
        *x = ring.mul(*x, params.n_inv);
    }
}

/// Total number of butterflies in an `n`-point NTT: `(n/2)·log2 n`.
pub fn butterfly_count(n: usize) -> u64 {
    (n as u64 / 2) * n.trailing_zeros() as u64
}

/// A single-machine-word (64-bit) NTT using the paper's single-word Barrett kernels —
/// the leftmost data point of Figure 5a.
#[derive(Debug, Clone)]
pub struct Ntt64 {
    /// Transform size.
    pub n: usize,
    /// Single-word Barrett context for the 60-bit modulus.
    pub ctx: SingleBarrett,
    pub(crate) omega: u64,
    pub(crate) omega_inv: u64,
    pub(crate) n_inv: u64,
}

impl Ntt64 {
    /// Builds a 64-bit NTT over the 60-bit evaluation modulus.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two between 2 and 2^32.
    pub fn new(n: usize) -> Self {
        let q = crate::params::paper_modulus(64)
            .to_u64()
            .expect("60-bit modulus");
        Self::with_modulus(q, n)
    }

    /// Builds a 64-bit NTT over an explicit NTT-friendly prime modulus `q` —
    /// the constructor session caches key their plans by `(q, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two between 2 and 2^32, if `q` is not an
    /// odd prime below `2^60` (the [`SingleBarrett`] bound), or if `n` does not
    /// divide `q − 1` (no primitive `n`-th root of unity exists then).
    pub fn with_modulus(q: u64, n: usize) -> Self {
        assert!(n.is_power_of_two() && (2..=1 << 32).contains(&n));
        assert!(
            (q - 1) % n as u64 == 0,
            "transform size must divide q - 1 (no primitive root of unity otherwise)"
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(q);
        assert!(
            moma_bignum::prime::is_prime(&mut rng, &moma_bignum::BigUint::from(q)),
            "NTT modulus must be prime"
        );
        let ctx = SingleBarrett::new(q);
        // Deterministic generator search as in the multi-word case.
        let cofactor = (q - 1) / n as u64;
        let mut omega = 0;
        for g in 3u64..1000 {
            let candidate = ctx.pow_mod(g, cofactor);
            if n == 1 || ctx.pow_mod(candidate, n as u64 / 2) != 1 {
                omega = candidate;
                break;
            }
        }
        assert!(omega != 0, "no primitive root found");
        let omega_inv = ctx.inv_mod(omega);
        let n_inv = ctx.inv_mod(n as u64 % q);
        Ntt64 {
            n,
            ctx,
            omega,
            omega_inv,
            n_inv,
        }
    }

    /// In-place forward transform.
    pub fn forward(&self, data: &mut [u64]) {
        self.transform(data, self.omega, false);
    }

    /// In-place inverse transform (with `1/n` scaling).
    pub fn inverse(&self, data: &mut [u64]) {
        self.transform(data, self.omega_inv, true);
        for x in data.iter_mut() {
            *x = self.ctx.mul_mod(*x, self.n_inv);
        }
    }

    fn transform(&self, data: &mut [u64], root: u64, _inverse: bool) {
        assert_eq!(data.len(), self.n);
        bit_reverse_permute(data);
        // Stage roots off one squaring ladder: stage `len` needs root^(n/len), and
        // those exponents are successive powers of two.
        let roots = stage_roots_u64(&self.ctx, root, self.n);
        let mut len = 2;
        let mut stage = 0;
        while len <= self.n {
            let w_len = roots[stage];
            let mut start = 0;
            while start < self.n {
                let mut w = 1u64;
                for j in 0..len / 2 {
                    let x = data[start + j];
                    let wy = self.ctx.mul_mod(w, data[start + j + len / 2]);
                    data[start + j] = self.ctx.add_mod(x, wy);
                    data[start + j + len / 2] = self.ctx.sub_mod(x, wy);
                    w = self.ctx.mul_mod(w, w_len);
                }
                start += len;
            }
            len <<= 1;
            stage += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::naive_dft;
    use moma_mp::MulAlgorithm;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn bit_reversal_is_involutive() {
        let mut v: Vec<u32> = (0..16).collect();
        let original = v.clone();
        bit_reverse_permute(&mut v);
        assert_ne!(v, original);
        bit_reverse_permute(&mut v);
        assert_eq!(v, original);
    }

    #[test]
    fn butterfly_count_formula() {
        assert_eq!(butterfly_count(2), 1);
        assert_eq!(butterfly_count(1024), 512 * 10);
        assert_eq!(butterfly_count(1 << 16), (1 << 15) * 16);
    }

    #[test]
    fn forward_matches_naive_dft_128() {
        let params = NttParams::<2>::for_paper_modulus(32, 128, MulAlgorithm::Schoolbook);
        let mut rng = StdRng::seed_from_u64(21);
        let data: Vec<_> = (0..32)
            .map(|_| params.ring.random_element(&mut rng))
            .collect();
        let expected = naive_dft(&params, &data);
        let mut actual = data.clone();
        forward(&params, &mut actual);
        assert_eq!(actual, expected);
    }

    #[test]
    fn roundtrip_at_multiple_widths_and_sizes() {
        fn roundtrip<const L: usize>(bits: u32, n: usize) {
            let params = NttParams::<L>::for_paper_modulus(n, bits, MulAlgorithm::Schoolbook);
            let mut rng = StdRng::seed_from_u64(bits as u64);
            let data: Vec<_> = (0..n)
                .map(|_| params.ring.random_element(&mut rng))
                .collect();
            let mut work = data.clone();
            forward(&params, &mut work);
            assert_ne!(work, data, "transform must change the data");
            inverse(&params, &mut work);
            assert_eq!(
                work, data,
                "NTT ∘ INTT must be the identity ({bits} bits, n={n})"
            );
        }
        roundtrip::<2>(128, 64);
        roundtrip::<4>(256, 128);
        roundtrip::<6>(384, 32);
        roundtrip::<12>(768, 16);
    }

    #[test]
    fn karatsuba_and_schoolbook_transforms_agree() {
        let sb = NttParams::<4>::for_paper_modulus(64, 256, MulAlgorithm::Schoolbook);
        let ka = NttParams::<4>::for_paper_modulus(64, 256, MulAlgorithm::Karatsuba);
        let mut rng = StdRng::seed_from_u64(33);
        let data: Vec<_> = (0..64).map(|_| sb.ring.random_element(&mut rng)).collect();
        let mut a = data.clone();
        let mut b = data;
        forward(&sb, &mut a);
        forward(&ka, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn ntt64_roundtrip_and_linearity() {
        let ntt = Ntt64::new(256);
        let mut rng = StdRng::seed_from_u64(44);
        let data: Vec<u64> = (0..256).map(|_| rng.gen::<u64>() % ntt.ctx.q).collect();
        let mut work = data.clone();
        ntt.forward(&mut work);
        ntt.inverse(&mut work);
        assert_eq!(work, data);

        // Linearity: NTT(a + b) = NTT(a) + NTT(b) point-wise.
        let a: Vec<u64> = (0..256).map(|_| rng.gen::<u64>() % ntt.ctx.q).collect();
        let b: Vec<u64> = (0..256).map(|_| rng.gen::<u64>() % ntt.ctx.q).collect();
        let sum: Vec<u64> = a
            .iter()
            .zip(&b)
            .map(|(x, y)| ntt.ctx.add_mod(*x, *y))
            .collect();
        let mut fa = a.clone();
        let mut fb = b.clone();
        let mut fsum = sum;
        ntt.forward(&mut fa);
        ntt.forward(&mut fb);
        ntt.forward(&mut fsum);
        for i in 0..256 {
            assert_eq!(fsum[i], ntt.ctx.add_mod(fa[i], fb[i]));
        }
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn wrong_length_panics() {
        let params = NttParams::<2>::for_paper_modulus(16, 128, MulAlgorithm::Schoolbook);
        let mut data = vec![MpUint::ZERO; 8];
        forward(&params, &mut data);
    }
}
