//! Precomputed NTT execution plans — the hot-path replacement for the naive
//! transforms in [`crate::transform`].
//!
//! The naive loops recompute every twiddle factor on the fly: a serial modular
//! multiplication chain inside each block plus a stage-root derivation per stage.
//! That is two modular multiplications per butterfly where one suffices, and it
//! serializes work the paper distributes across CUDA threads. A plan performs all
//! of that work **once per (modulus, n)**:
//!
//! * [`NttPlan`] — the multi-word path. Precomputes the flat bit-reversed-order
//!   twiddle tables (Harvey's layout: entry `m + j` holds `ω_{2m}^j`, so every
//!   stage reads its twiddles sequentially) for the forward and inverse transforms
//!   plus `n^{-1}`, and runs butterflies with exactly one ring multiplication each.
//! * [`NttPlan64`] — the single-word path. Additionally stores a Shoup
//!   precomputed quotient per twiddle ([`SingleBarrett::shoup_precompute`]) and
//!   executes the butterfly stages with **lazy reduction**: values live in
//!   `[0, 4q)` through the stages (one conditional subtraction per butterfly
//!   instead of three) and are normalized to `[0, q)` in a single final pass.
//!   This is Harvey's butterfly, valid because the evaluation modulus has 60 bits
//!   (`4q < 2^64`).

use crate::params::NttParams;
use crate::transform::{bit_reverse_permute, stage_roots, stage_roots_u64, Ntt64};
use moma_mp::single::SingleBarrett;
use moma_mp::{ModRing, MpUint, MulAlgorithm};
use rand::SeedableRng;

/// A reusable execution plan for `n`-point transforms over `L`-limb elements.
///
/// Building a plan costs about `n` ring multiplications (one serial pass per
/// stage-aggregate table); every subsequent transform then does one multiplication
/// per butterfly instead of the naive loop's two, and no stage-root derivation.
///
/// # Example
///
/// ```
/// use moma_ntt::{NttParams, NttPlan};
/// use moma_mp::MulAlgorithm;
///
/// let params = NttParams::<2>::for_paper_modulus(16, 128, MulAlgorithm::Schoolbook);
/// let plan = NttPlan::new(&params);
/// let mut data = vec![moma_mp::U128::from_u64(7); 16];
/// let original = data.clone();
/// plan.forward(&mut data);
/// plan.inverse(&mut data);
/// assert_eq!(data, original);
/// ```
#[derive(Debug, Clone)]
pub struct NttPlan<const L: usize> {
    /// Transform size (a power of two).
    pub n: usize,
    /// The coefficient ring `Z_q`.
    pub ring: ModRing<L>,
    /// Forward twiddles in bit-reversed (Harvey) layout: `fwd[m + j] = ω_{2m}^j`
    /// for every stage half-length `m = 1, 2, …, n/2` and `0 ≤ j < m`. Entry 0 is
    /// unused padding so the table is indexed directly by `m + j`.
    fwd: Vec<MpUint<L>>,
    /// Inverse twiddles in the same layout, built from `ω^{-1}`.
    inv: Vec<MpUint<L>>,
    /// `n^{-1} mod q` for the inverse transform's final scaling.
    n_inv: MpUint<L>,
}

impl<const L: usize> NttPlan<L> {
    /// Builds a plan from existing transform parameters.
    pub fn new(params: &NttParams<L>) -> Self {
        NttPlan {
            n: params.n,
            ring: params.ring,
            fwd: build_table(&params.ring, params.omega, params.n),
            inv: build_table(&params.ring, params.omega_inv, params.n),
            n_inv: params.n_inv,
        }
    }

    /// Convenience constructor: derives parameters for the evaluation modulus of
    /// `bits`-bit kernels and builds the plan.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`NttParams::for_paper_modulus`].
    pub fn for_paper_modulus(n: usize, bits: u32, alg: MulAlgorithm) -> Self {
        Self::new(&NttParams::for_paper_modulus(n, bits, alg))
    }

    /// The twiddle factors of one butterfly stage, selected by direction and
    /// stage half-length `m` (a power of two below `n`): entry `j` is `ω_{2m}^j`.
    ///
    /// This — not the raw tables — is the interface stage-level executors (the
    /// launcher, session batching) consume plans through, so the table layout
    /// can change without breaking them.
    ///
    /// # Panics
    ///
    /// Panics if `m` is not a power of two in `[1, n)`.
    pub fn stage(&self, forward: bool, m: usize) -> &[MpUint<L>] {
        assert!(
            m.is_power_of_two() && m < self.n,
            "stage half-length must be a power of two below n"
        );
        let table = if forward { &self.fwd } else { &self.inv };
        &table[m..2 * m]
    }

    /// `n^{-1} mod q`, the inverse transform's final scaling factor.
    pub fn n_inv(&self) -> MpUint<L> {
        self.n_inv
    }

    /// In-place forward NTT using the precomputed tables.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.n`.
    pub fn forward(&self, data: &mut [MpUint<L>]) {
        self.run(data, &self.fwd);
    }

    /// In-place inverse NTT (including the `1/n` scaling) using the precomputed
    /// tables.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.n`.
    pub fn inverse(&self, data: &mut [MpUint<L>]) {
        self.run(data, &self.inv);
        for x in data.iter_mut() {
            *x = self.ring.mul(*x, self.n_inv);
        }
    }

    fn run(&self, data: &mut [MpUint<L>], table: &[MpUint<L>]) {
        assert_eq!(
            data.len(),
            self.n,
            "data length must equal the transform size"
        );
        bit_reverse_permute(data);
        // Stage m = 1 uses only the twiddle ω^0 = 1: no multiplication needed.
        for pair in data.chunks_exact_mut(2) {
            let x = pair[0];
            let y = pair[1];
            pair[0] = self.ring.add(x, y);
            pair[1] = self.ring.sub(x, y);
        }
        let mut m = 2;
        while m < self.n {
            let twiddles = &table[m..2 * m];
            let mut start = 0;
            while start < self.n {
                for (j, &w) in twiddles.iter().enumerate() {
                    let x = data[start + j];
                    let wy = self.ring.mul(w, data[start + j + m]);
                    data[start + j] = self.ring.add(x, wy);
                    data[start + j + m] = self.ring.sub(x, wy);
                }
                start += 2 * m;
            }
            m <<= 1;
        }
    }
}

/// Builds the flat bit-reversed-layout twiddle table for `root` (a primitive `n`-th
/// root of unity): entry `m + j` is `root^{(n/2m)·j}`, i.e. `ω_{2m}^j`.
fn build_table<const L: usize>(ring: &ModRing<L>, root: MpUint<L>, n: usize) -> Vec<MpUint<L>> {
    let mut table = vec![MpUint::<L>::ONE; n.max(2)];
    // stage_roots[k] = root^(n / 2^(k+1)) = ω_{2^(k+1)}, off one squaring ladder.
    let roots = stage_roots(ring, root, n);
    let mut m = 1;
    let mut stage = 0;
    while m < n {
        let w_2m = roots[stage];
        let mut cur = MpUint::<L>::ONE;
        for j in 0..m {
            table[m + j] = cur;
            cur = ring.mul(cur, w_2m);
        }
        m <<= 1;
        stage += 1;
    }
    table
}

/// A single-machine-word plan over the 60-bit evaluation modulus, with Shoup
/// precomputed quotients and lazy reduction through the butterfly stages.
///
/// Each butterfly performs one [`SingleBarrett::mul_mod_shoup_lazy`] (one `u128`
/// high product and two wrapping word multiplications), one addition, and one
/// subtraction, with values kept in `[0, 4q)`; a single normalize pass brings the
/// result back to `[0, q)`. Compare the naive [`Ntt64`], which spends two full
/// Barrett multiplications (three `u128` products each) per butterfly on the
/// twiddle chain alone.
#[derive(Debug, Clone)]
pub struct NttPlan64 {
    /// Transform size.
    pub n: usize,
    /// Single-word Barrett context for the 60-bit modulus (used for setup and the
    /// fallback entry points; the hot loop uses the Shoup tables).
    pub ctx: SingleBarrett,
    two_q: u64,
    fwd: Vec<u64>,
    fwd_shoup: Vec<u64>,
    inv: Vec<u64>,
    inv_shoup: Vec<u64>,
    n_inv: u64,
    n_inv_shoup: u64,
    twist: Option<Twist64>,
}

/// Precomputed negacyclic twist tables: the diagonal `ψ^i` multiply of the
/// forward transform folded into the (otherwise multiplication-free) first
/// butterfly stage, and the `ψ^{-i}` untwist folded into the inverse
/// transform's scaling pass — a negacyclic ring multiply is therefore
/// transform → pointwise → inverse with **no separate twist pass**.
#[derive(Debug, Clone)]
struct Twist64 {
    /// The primitive `2n`-th root of unity (`ψ² = ω`, `ψ^n = −1`).
    psi: u64,
    /// `ψ^{rev(i)}` for `i ∈ [0, n)`: the twist factor of slot `i` *after* the
    /// bit-reverse permutation, consumed by the folded first stage.
    fwd_rev: Vec<u64>,
    fwd_rev_shoup: Vec<u64>,
    /// `ψ^{-i}·n^{-1}` in natural order: the untwist and the `1/n` scaling in
    /// one Shoup multiply per element, consumed by the inverse's final pass.
    inv_scale: Vec<u64>,
    inv_scale_shoup: Vec<u64>,
}

/// Borrowed view of a plan's negacyclic twist tables, the interface stage-level
/// executors (the launcher, session batching) consume the fold through.
#[derive(Debug, Clone, Copy)]
pub struct Twist64View<'a> {
    /// The primitive `2n`-th root `ψ`.
    pub psi: u64,
    /// Per-slot twist factors `ψ^{rev(i)}` for the folded forward first stage
    /// (indexed by position in the bit-reverse-permuted array).
    pub forward: Stage64<'a>,
    /// Per-slot untwist-and-scale factors `ψ^{-i}·n^{-1}` for the inverse's
    /// final pass (natural output order).
    pub inverse_scale: Stage64<'a>,
}

/// Why a restored [`NttPlan64`] table set was rejected by
/// [`NttPlan64::from_tables`]. Every variant is fail-closed: nothing about the
/// plan is usable once validation stops.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NttRestoreError {
    /// The modulus is outside the supported range (`q < 2` or above 60 bits).
    BadModulus {
        /// The rejected modulus.
        q: u64,
    },
    /// `n` is not a power of two ≥ 2, or a table length does not match it.
    BadShape {
        /// The claimed transform size.
        n: usize,
        /// Length of the provided forward table.
        fwd_len: usize,
        /// Length of the provided inverse table.
        inv_len: usize,
    },
    /// A twiddle entry or `n^{-1}` is not reduced below `q`.
    Unreduced,
    /// The tables fail a structural identity (stage recurrence, root-of-unity
    /// ladder, forward·inverse ≠ 1, or `n·n^{-1} ≠ 1`). The message names the
    /// first identity that failed.
    InconsistentTables(&'static str),
}

impl std::fmt::Display for NttRestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NttRestoreError::BadModulus { q } => {
                write!(f, "modulus {q} is outside the supported 60-bit range")
            }
            NttRestoreError::BadShape {
                n,
                fwd_len,
                inv_len,
            } => write!(
                f,
                "shape mismatch: n = {n}, forward table length {fwd_len}, \
                 inverse table length {inv_len}"
            ),
            NttRestoreError::Unreduced => {
                write!(f, "a restored table entry is not reduced below the modulus")
            }
            NttRestoreError::InconsistentTables(what) => {
                write!(f, "restored twiddle tables are inconsistent: {what}")
            }
        }
    }
}

impl std::error::Error for NttRestoreError {}

/// One butterfly stage's twiddle view for [`NttPlan64`]: the twiddle factors and
/// their Shoup precomputed quotients, in lock-step order (entry `j` is
/// `ω_{2m}^j` and its quotient).
#[derive(Debug, Clone, Copy)]
pub struct Stage64<'a> {
    /// The stage's twiddle factors: entry `j` is `ω_{2m}^j`.
    pub twiddles: &'a [u64],
    /// Shoup precomputed quotients, one per twiddle.
    pub shoup: &'a [u64],
}

impl NttPlan64 {
    /// Builds the plan for an `n`-point transform over the 60-bit evaluation
    /// modulus.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two between 2 and 2^32.
    pub fn new(n: usize) -> Self {
        Self::from_ntt(&Ntt64::new(n))
    }

    /// Builds the plan for an `n`-point transform over an explicit NTT-friendly
    /// prime modulus — the `(q, n)`-keyed constructor session plan caches use.
    ///
    /// # Panics
    ///
    /// Panics under the conditions of [`Ntt64::with_modulus`] (and the `q < 2^62`
    /// lazy-reduction bound, which [`moma_mp::single::SingleBarrett`]'s 60-bit
    /// cap already implies).
    pub fn with_modulus(q: u64, n: usize) -> Self {
        Self::from_ntt(&Ntt64::with_modulus(q, n))
    }

    /// Builds the plan from an existing naive transform context (same modulus,
    /// same roots — the two paths compute identical transforms).
    ///
    /// # Panics
    ///
    /// Panics unless the modulus is below `2^62` (i.e. at 63 or more
    /// significant bits, or exactly `q = 2^62`). The Harvey lazy butterflies
    /// keep values in `[0, 4q)` between stages, so `4q` must fit a machine word;
    /// this is a real `assert!` (not a `debug_assert!`) because a violation in a
    /// release build would silently wrap the butterfly arithmetic instead of
    /// failing loudly. [`SingleBarrett::new`] already caps moduli at 60 bits, but
    /// the plan's invariant is `q < 2^62` and is enforced where the lazy
    /// discipline is entered, not inherited from a caller's context.
    pub fn from_ntt(ntt: &Ntt64) -> Self {
        let ctx = ntt.ctx;
        assert!(
            ctx.q < 1 << 62,
            "lazy-reduction NTT requires q < 2^62 so values in [0, 4q) fit a word (got {} bits)",
            64 - ctx.q.leading_zeros()
        );
        let fwd = build_table_u64(&ctx, ntt.omega, ntt.n);
        let inv = build_table_u64(&ctx, ntt.omega_inv, ntt.n);
        let fwd_shoup = fwd.iter().map(|&w| ctx.shoup_precompute(w)).collect();
        let inv_shoup = inv.iter().map(|&w| ctx.shoup_precompute(w)).collect();
        NttPlan64 {
            n: ntt.n,
            ctx,
            two_q: 2 * ctx.q,
            fwd,
            fwd_shoup,
            inv,
            inv_shoup,
            n_inv: ntt.n_inv,
            n_inv_shoup: ctx.shoup_precompute(ntt.n_inv),
            twist: None,
        }
    }

    /// Builds a **negacyclic** plan over `Z_q[X]/(X^n + 1)`: the transform pair
    /// that turns negacyclic (anti-circular) convolution into a pointwise
    /// product. Requires `q ≡ 1 (mod 2n)` so a primitive `2n`-th root of unity
    /// `ψ` exists; the cyclic stages then run over `ω = ψ²` while the `ψ^i`
    /// twist is folded into the first forward stage and the `ψ^{-i}` untwist
    /// into the inverse's scaling pass (see [`Twist64View`]) — the marginal
    /// cost over the cyclic transform is one Shoup multiply per element on each
    /// direction, with no separate pass.
    ///
    /// The search for `ψ` is deterministic (smallest generator base, as in
    /// [`Ntt64::with_modulus`]), so equal `(q, n)` always yield bit-identical
    /// plans — the property the session's negacyclic plan cache and snapshot
    /// restore rely on.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two in `[2, 2^31]`, if `q` is not an odd
    /// prime below `2^60`, or if `2n` does not divide `q − 1`.
    pub fn negacyclic(q: u64, n: usize) -> Self {
        assert!(
            n.is_power_of_two() && (2..=1 << 31).contains(&n),
            "transform size must be a power of two in [2, 2^31]"
        );
        let two_n = 2 * n as u64;
        assert!(
            (q - 1) % two_n == 0,
            "negacyclic transform requires q ≡ 1 (mod 2n): no primitive 2n-th root otherwise"
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(q);
        assert!(
            moma_bignum::prime::is_prime(&mut rng, &moma_bignum::BigUint::from(q)),
            "NTT modulus must be prime"
        );
        let ctx = SingleBarrett::new(q);
        // Deterministic ψ search: ψ = g^((q−1)/2n) is a 2n-th root; it is
        // primitive exactly when ψ^n = −1 (its order divides 2n = 2^{k+1} but
        // not 2^k, hence equals 2n).
        let cofactor = (q - 1) / two_n;
        let mut psi = 0;
        for g in 3u64..2000 {
            let candidate = ctx.pow_mod(g, cofactor);
            if ctx.pow_mod(candidate, n as u64) == q - 1 {
                psi = candidate;
                break;
            }
        }
        assert!(psi != 0, "no primitive 2n-th root found");
        let omega = ctx.mul_mod(psi, psi);
        let omega_inv = ctx.inv_mod(omega);
        let n_inv = ctx.inv_mod(n as u64 % q);
        let fwd = build_table_u64(&ctx, omega, n);
        let inv = build_table_u64(&ctx, omega_inv, n);
        let fwd_shoup = fwd.iter().map(|&w| ctx.shoup_precompute(w)).collect();
        let inv_shoup = inv.iter().map(|&w| ctx.shoup_precompute(w)).collect();
        NttPlan64 {
            n,
            ctx,
            two_q: 2 * q,
            fwd,
            fwd_shoup,
            inv,
            inv_shoup,
            n_inv,
            n_inv_shoup: ctx.shoup_precompute(n_inv),
            twist: Some(build_twist_u64(&ctx, psi, n_inv, n)),
        }
    }

    /// `true` if this plan computes the negacyclic transform pair over
    /// `Z_q[X]/(X^n + 1)` rather than the cyclic one.
    pub fn is_negacyclic(&self) -> bool {
        self.twist.is_some()
    }

    /// The primitive `2n`-th root `ψ` of a negacyclic plan (`None` for cyclic
    /// plans) — together with [`NttPlan64::twiddle_tables`] this is the full
    /// serialization view: the twist tables are derived data, rebuilt and
    /// validated on restore.
    pub fn psi(&self) -> Option<u64> {
        self.twist.as_ref().map(|t| t.psi)
    }

    /// Borrowed view of the negacyclic twist tables (`None` for cyclic plans):
    /// the folded forward first-stage factors and the inverse's combined
    /// untwist-and-scale factors, with their Shoup quotients.
    pub fn twist(&self) -> Option<Twist64View<'_>> {
        self.twist.as_ref().map(|t| Twist64View {
            psi: t.psi,
            forward: Stage64 {
                twiddles: &t.fwd_rev,
                shoup: &t.fwd_rev_shoup,
            },
            inverse_scale: Stage64 {
                twiddles: &t.inv_scale,
                shoup: &t.inv_scale_shoup,
            },
        })
    }

    /// The full forward and inverse twiddle tables in the flat Harvey layout
    /// (entry `m + j` is `ω_{2m}^j`; entry 0 is padding) — the serialization
    /// view used by session snapshots. The Shoup quotient tables are *not*
    /// exposed: they are derived data, recomputed on restore so a snapshot
    /// cannot smuggle in mismatched quotients.
    pub fn twiddle_tables(&self) -> (&[u64], &[u64]) {
        (&self.fwd, &self.inv)
    }

    /// Rebuilds a plan from snapshot data: the modulus, transform size, both
    /// twiddle tables, and `n^{-1}`. This is the warm-start constructor — it
    /// skips the primitive-root search entirely — but it does **not** trust its
    /// input: every structural identity a freshly built table satisfies is
    /// checked, and any failure rejects the whole plan with a typed error.
    ///
    /// Checks, in order: modulus range, power-of-two shape and table lengths,
    /// reduction of every entry, `n·n^{-1} ≡ 1`, `fwd[i]·inv[i] ≡ 1` for every
    /// entry, each stage's geometric recurrence `fwd[m+j+1] = fwd[m+j]·fwd[m+1]`
    /// with `fwd[m] = 1`, the squaring ladder `fwd[2m+1]² = fwd[m+1]` between
    /// stages, and the primitivity anchor `fwd[3]² = −1` (which, with the
    /// ladder, forces every stage generator to have exactly its stage's order).
    /// Shoup quotients and `2q` are recomputed, never deserialized.
    pub fn from_tables(
        q: u64,
        n: usize,
        fwd: Vec<u64>,
        inv: Vec<u64>,
        n_inv: u64,
    ) -> Result<Self, NttRestoreError> {
        if q < 2 || (64 - q.leading_zeros()) > 60 {
            return Err(NttRestoreError::BadModulus { q });
        }
        if !n.is_power_of_two() || n < 2 || fwd.len() != n.max(2) || inv.len() != n.max(2) {
            return Err(NttRestoreError::BadShape {
                n,
                fwd_len: fwd.len(),
                inv_len: inv.len(),
            });
        }
        if n_inv >= q || fwd.iter().chain(&inv).any(|&w| w >= q) {
            return Err(NttRestoreError::Unreduced);
        }
        let ctx = SingleBarrett::new(q);
        if ctx.mul_mod(n as u64 % q, n_inv) != 1 {
            return Err(NttRestoreError::InconsistentTables("n · n⁻¹ ≠ 1"));
        }
        if fwd
            .iter()
            .zip(&inv)
            .any(|(&w, &wi)| ctx.mul_mod(w, wi) != 1)
        {
            return Err(NttRestoreError::InconsistentTables(
                "forward · inverse twiddle ≠ 1",
            ));
        }
        // Per-stage geometric recurrence: entries m..2m must be the powers of
        // the stage generator fwd[m + 1], starting from fwd[m] = 1.
        let mut m = 1;
        while m < n {
            if fwd[m] != 1 {
                return Err(NttRestoreError::InconsistentTables("stage entry j = 0 ≠ 1"));
            }
            // Stage m = 1 has the single entry ω⁰ = 1 and no generator slot:
            // fwd[2] belongs to stage 2 (and is out of bounds when n = 2).
            let g = if m == 1 { 1 } else { fwd[m + 1] };
            let mut cur = 1u64;
            for j in 0..m {
                if fwd[m + j] != cur {
                    return Err(NttRestoreError::InconsistentTables(
                        "stage twiddles break the geometric recurrence",
                    ));
                }
                cur = ctx.mul_mod(cur, g);
            }
            m <<= 1;
        }
        // Squaring ladder between stages: ω_{4m}² = ω_{2m}, anchored at
        // ω_4² = −1. Together with the recurrence above this forces every
        // stage generator to be a primitive root of exactly its stage's order.
        if n >= 4 && ctx.mul_mod(fwd[3], fwd[3]) != q - 1 {
            return Err(NttRestoreError::InconsistentTables("ω₄² ≠ −1"));
        }
        let mut m = 2;
        while 2 * m < n {
            if ctx.mul_mod(fwd[2 * m + 1], fwd[2 * m + 1]) != fwd[m + 1] {
                return Err(NttRestoreError::InconsistentTables(
                    "stage generators break the squaring ladder",
                ));
            }
            m <<= 1;
        }
        let fwd_shoup = fwd.iter().map(|&w| ctx.shoup_precompute(w)).collect();
        let inv_shoup = inv.iter().map(|&w| ctx.shoup_precompute(w)).collect();
        Ok(NttPlan64 {
            n,
            ctx,
            two_q: 2 * q,
            fwd,
            fwd_shoup,
            inv,
            inv_shoup,
            n_inv,
            n_inv_shoup: ctx.shoup_precompute(n_inv),
            twist: None,
        })
    }

    /// [`NttPlan64::from_tables`] for **negacyclic** plans: validates the cyclic
    /// table set identically, then checks that `ψ` is reduced and squares to the
    /// tables' own stage root `ω` (for `n = 2`, to `−1`). Together with the
    /// cyclic identities — which force `ω` to be a primitive `n`-th root — this
    /// makes `ψ` a primitive `2n`-th root, so a tampered `ψ` cannot validate.
    /// The twist tables themselves are derived data: rebuilt from `ψ` here,
    /// never deserialized.
    pub fn from_tables_negacyclic(
        q: u64,
        n: usize,
        fwd: Vec<u64>,
        inv: Vec<u64>,
        n_inv: u64,
        psi: u64,
    ) -> Result<Self, NttRestoreError> {
        let mut plan = Self::from_tables(q, n, fwd, inv, n_inv)?;
        if psi >= q {
            return Err(NttRestoreError::Unreduced);
        }
        let ctx = plan.ctx;
        // The last stage's generator entry fwd[n/2 + 1] is ω itself; n = 2 has
        // no generator slot (its only twiddle is ω⁰ = 1) and ω₂ = −1.
        let omega = if n >= 4 { plan.fwd[n / 2 + 1] } else { q - 1 };
        if ctx.mul_mod(psi, psi) != omega {
            return Err(NttRestoreError::InconsistentTables("ψ² ≠ ω"));
        }
        plan.twist = Some(build_twist_u64(&ctx, psi, plan.n_inv, n));
        Ok(plan)
    }

    /// The twiddle factors and Shoup quotients of one butterfly stage, selected
    /// by direction and stage half-length `m` (a power of two below `n`).
    ///
    /// This is the stable interface stage-level executors (the launcher, session
    /// batching) consume the plan through; the flat bit-reversed table layout
    /// stays an implementation detail.
    ///
    /// # Panics
    ///
    /// Panics if `m` is not a power of two in `[1, n)`.
    pub fn stage(&self, forward: bool, m: usize) -> Stage64<'_> {
        assert!(
            m.is_power_of_two() && m < self.n,
            "stage half-length must be a power of two below n"
        );
        let (table, shoup) = if forward {
            (&self.fwd, &self.fwd_shoup)
        } else {
            (&self.inv, &self.inv_shoup)
        };
        Stage64 {
            twiddles: &table[m..2 * m],
            shoup: &shoup[m..2 * m],
        }
    }

    /// `2q` — the upper bound of the lazy-reduction fold (values live in
    /// `[0, 4q)` between stages; see [`NttPlan64::from_ntt`]).
    pub fn two_q(&self) -> u64 {
        self.two_q
    }

    /// `n^{-1} mod q` and its Shoup precomputed quotient, the inverse
    /// transform's final scaling pair.
    pub fn n_inv_pair(&self) -> (u64, u64) {
        (self.n_inv, self.n_inv_shoup)
    }

    /// In-place forward transform. Inputs must be reduced (`< q`); outputs are
    /// reduced.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.n`.
    pub fn forward(&self, data: &mut [u64]) {
        self.run_lazy(data, true);
        let q = self.ctx.q;
        for x in data.iter_mut() {
            let mut v = *x;
            if v >= self.two_q {
                v -= self.two_q;
            }
            if v >= q {
                v -= q;
            }
            *x = v;
        }
    }

    /// In-place inverse transform (with `1/n` scaling). Inputs must be reduced;
    /// outputs are reduced.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.n`.
    pub fn inverse(&self, data: &mut [u64]) {
        self.run_lazy(data, false);
        // The scaling multiplication doubles as the normalize pass: the lazy Shoup
        // product accepts the stages' [0, 4q) values and lands in [0, 2q). On a
        // negacyclic plan the per-index factor ψ^{-i}·n^{-1} replaces the uniform
        // n^{-1}: the untwist rides the same single multiply.
        let q = self.ctx.q;
        if let Some(tw) = &self.twist {
            for (x, (&s, &ss)) in data
                .iter_mut()
                .zip(tw.inv_scale.iter().zip(&tw.inv_scale_shoup))
            {
                let t = self.ctx.mul_mod_shoup_lazy(*x, s, ss);
                *x = if t >= q { t - q } else { t };
            }
        } else {
            for x in data.iter_mut() {
                let t = self
                    .ctx
                    .mul_mod_shoup_lazy(*x, self.n_inv, self.n_inv_shoup);
                *x = if t >= q { t - q } else { t };
            }
        }
    }

    /// Runs the butterfly stages with values lazily reduced in `[0, 4q)`.
    ///
    /// Harvey's butterfly: fold `x` into `[0, 2q)` with one conditional
    /// subtraction, take the lazy Shoup product `t = w·y mod q ∈ [0, 2q)`, and emit
    /// `x + t` and `x − t + 2q`, both `< 4q`. Correct because `4q < 2^64` for the
    /// 60-bit modulus. The Shoup product is inlined (one high `u128` product, two
    /// wrapping word products) and the loops are structured as exact chunks so the
    /// compiler drops every bounds check from the inner loop.
    fn run_lazy(&self, data: &mut [u64], forward: bool) {
        assert_eq!(
            data.len(),
            self.n,
            "data length must equal the transform size"
        );
        let (table, shoup) = if forward {
            (&self.fwd, &self.fwd_shoup)
        } else {
            (&self.inv, &self.inv_shoup)
        };
        bit_reverse_permute(data);
        let q = self.ctx.q;
        let two_q = self.two_q;

        // Stage m = 1 is special-cased: its only twiddle is ω^0 = 1, so the
        // butterfly needs no multiplication at all. Inputs are reduced (< q), so
        // `x + y < 2q` and `x + 2q − y < 4q` keep the lazy invariant.
        //
        // A negacyclic forward folds the ψ twist here instead: each input is
        // multiplied by its slot's ψ^{rev(i)} (lazy Shoup product in [0, 2q)),
        // then butterflied — `t₀ + t₁ < 4q` and `t₀ + 2q − t₁ < 4q` keep the
        // same invariant at the cost of the one multiply the twist needs anyway.
        match (&self.twist, forward) {
            (Some(tw), true) => {
                for (p, pair) in data.chunks_exact_mut(2).enumerate() {
                    let t0 = self.ctx.mul_mod_shoup_lazy(
                        pair[0],
                        tw.fwd_rev[2 * p],
                        tw.fwd_rev_shoup[2 * p],
                    );
                    let t1 = self.ctx.mul_mod_shoup_lazy(
                        pair[1],
                        tw.fwd_rev[2 * p + 1],
                        tw.fwd_rev_shoup[2 * p + 1],
                    );
                    pair[0] = t0 + t1;
                    pair[1] = t0 + two_q - t1;
                }
            }
            _ => {
                for pair in data.chunks_exact_mut(2) {
                    let x = pair[0];
                    let y = pair[1];
                    pair[0] = x + y;
                    pair[1] = x + two_q - y;
                }
            }
        }

        let mut m = 2;
        while m < self.n {
            let twiddles = &table[m..2 * m];
            let quotients = &shoup[m..2 * m];
            for block in data.chunks_exact_mut(2 * m) {
                let (xs, ys) = block.split_at_mut(m);
                for (((x, y), &w), &ws) in xs
                    .iter_mut()
                    .zip(ys.iter_mut())
                    .zip(twiddles)
                    .zip(quotients)
                {
                    let mut xv = *x;
                    if xv >= two_q {
                        xv -= two_q;
                    }
                    let yv = *y;
                    let hi = ((ws as u128 * yv as u128) >> 64) as u64;
                    let t = w.wrapping_mul(yv).wrapping_sub(hi.wrapping_mul(q));
                    *x = xv + t;
                    *y = xv + two_q - t;
                }
            }
            m <<= 1;
        }
    }
}

/// Builds the negacyclic twist tables from a (validated) primitive `2n`-th root
/// `ψ`: the forward factors `ψ^{rev(i)}` (bit-reverse-permuted so the folded
/// first stage indexes them positionally) and the inverse's combined
/// `ψ^{-i}·n^{-1}` factors in natural order, each with Shoup quotients.
fn build_twist_u64(ctx: &SingleBarrett, psi: u64, n_inv: u64, n: usize) -> Twist64 {
    let psi_inv = ctx.inv_mod(psi);
    let mut fwd_rev = Vec::with_capacity(n);
    let mut p = 1u64;
    for _ in 0..n {
        fwd_rev.push(p);
        p = ctx.mul_mod(p, psi);
    }
    bit_reverse_permute(&mut fwd_rev);
    let mut inv_scale = Vec::with_capacity(n);
    let mut p = n_inv;
    for _ in 0..n {
        inv_scale.push(p);
        p = ctx.mul_mod(p, psi_inv);
    }
    let fwd_rev_shoup = fwd_rev.iter().map(|&w| ctx.shoup_precompute(w)).collect();
    let inv_scale_shoup = inv_scale.iter().map(|&w| ctx.shoup_precompute(w)).collect();
    Twist64 {
        psi,
        fwd_rev,
        fwd_rev_shoup,
        inv_scale,
        inv_scale_shoup,
    }
}

/// `u64` counterpart of [`build_table`].
fn build_table_u64(ctx: &SingleBarrett, root: u64, n: usize) -> Vec<u64> {
    let mut table = vec![1u64; n.max(2)];
    let roots = stage_roots_u64(ctx, root, n);
    let mut m = 1;
    let mut stage = 0;
    while m < n {
        let w_2m = roots[stage];
        let mut w = 1u64;
        for j in 0..m {
            table[m + j] = w;
            w = ctx.mul_mod(w, w_2m);
        }
        m <<= 1;
        stage += 1;
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::naive_dft;
    use crate::transform::{forward, inverse};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn plan_matches_naive_transform_128() {
        let params = NttParams::<2>::for_paper_modulus(64, 128, MulAlgorithm::Schoolbook);
        let plan = NttPlan::new(&params);
        let mut rng = StdRng::seed_from_u64(71);
        let data: Vec<_> = (0..64)
            .map(|_| params.ring.random_element(&mut rng))
            .collect();
        let mut a = data.clone();
        let mut b = data;
        forward(&params, &mut a);
        plan.forward(&mut b);
        assert_eq!(a, b, "planned forward must match the naive path");
        inverse(&params, &mut a);
        plan.inverse(&mut b);
        assert_eq!(a, b, "planned inverse must match the naive path");
    }

    #[test]
    fn plan_matches_dft_oracle() {
        let params = NttParams::<2>::for_paper_modulus(32, 128, MulAlgorithm::Schoolbook);
        let plan = NttPlan::new(&params);
        let mut rng = StdRng::seed_from_u64(72);
        let data: Vec<_> = (0..32)
            .map(|_| params.ring.random_element(&mut rng))
            .collect();
        let expected = naive_dft(&params, &data);
        let mut actual = data.clone();
        plan.forward(&mut actual);
        assert_eq!(actual, expected);
    }

    #[test]
    fn plan_roundtrip_at_multiple_widths() {
        fn roundtrip<const L: usize>(bits: u32, n: usize) {
            let plan = NttPlan::<L>::for_paper_modulus(n, bits, MulAlgorithm::Schoolbook);
            let mut rng = StdRng::seed_from_u64(bits as u64 + n as u64);
            let data: Vec<_> = (0..n).map(|_| plan.ring.random_element(&mut rng)).collect();
            let mut work = data.clone();
            plan.forward(&mut work);
            assert_ne!(work, data);
            plan.inverse(&mut work);
            assert_eq!(work, data, "{bits} bits, n={n}");
        }
        roundtrip::<2>(128, 64);
        roundtrip::<4>(256, 32);
        roundtrip::<6>(384, 16);
    }

    #[test]
    fn plan64_matches_naive_ntt64() {
        let ntt = Ntt64::new(512);
        let plan = NttPlan64::from_ntt(&ntt);
        let mut rng = StdRng::seed_from_u64(73);
        let data: Vec<u64> = (0..512).map(|_| rng.gen::<u64>() % ntt.ctx.q).collect();
        let mut a = data.clone();
        let mut b = data.clone();
        ntt.forward(&mut a);
        plan.forward(&mut b);
        assert_eq!(a, b, "planned u64 forward must match the naive path");
        ntt.inverse(&mut a);
        plan.inverse(&mut b);
        assert_eq!(a, b, "planned u64 inverse must match the naive path");
        assert_eq!(a, data, "inverse ∘ forward must be the identity");
    }

    #[test]
    fn plan64_outputs_are_fully_reduced() {
        let plan = NttPlan64::new(256);
        let mut rng = StdRng::seed_from_u64(74);
        let mut data: Vec<u64> = (0..256).map(|_| rng.gen::<u64>() % plan.ctx.q).collect();
        plan.forward(&mut data);
        assert!(data.iter().all(|&x| x < plan.ctx.q));
        plan.inverse(&mut data);
        assert!(data.iter().all(|&x| x < plan.ctx.q));
    }

    #[test]
    #[should_panic(expected = "q < 2^62")]
    fn plan64_rejects_moduli_at_the_lazy_reduction_boundary() {
        // Forge a context whose modulus breaks the [0, 4q) word-width invariant
        // (SingleBarrett::new itself would reject it, but the plan must not rely
        // on every caller having gone through that constructor).
        let good = Ntt64::new(4);
        let forged = Ntt64 {
            n: good.n,
            ctx: SingleBarrett {
                q: 1 << 62,
                mu: 1,
                mbits: 63,
                radix: 0,
                recip: 0,
            },
            omega: good.omega,
            omega_inv: good.omega_inv,
            n_inv: good.n_inv,
        };
        NttPlan64::from_ntt(&forged);
    }

    #[test]
    fn plan64_boundary_modulus_keeps_lazy_values_in_range() {
        // The largest modulus the stack can build is 60-bit, comfortably below
        // the 2^62 bound: 4q must fit a u64 and a forward/inverse round trip must
        // stay exact on inputs packed at the top of the reduced range.
        let plan = NttPlan64::new(64);
        assert!(plan.ctx.q < 1 << 62);
        assert_eq!(plan.two_q, 2 * plan.ctx.q); // no wrap computing 2q
        assert!(plan.two_q.checked_mul(2).is_some(), "4q must fit a u64");
        let data: Vec<u64> = (0..64).map(|i| plan.ctx.q - 1 - i as u64).collect();
        let mut work = data.clone();
        plan.forward(&mut work);
        assert!(work.iter().all(|&x| x < plan.ctx.q));
        plan.inverse(&mut work);
        assert_eq!(work, data);
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn plan_wrong_length_panics() {
        let plan = NttPlan::<2>::for_paper_modulus(16, 128, MulAlgorithm::Schoolbook);
        let mut data = vec![MpUint::ZERO; 8];
        plan.forward(&mut data);
    }

    /// Serializes and restores `plan` through the snapshot accessors.
    fn roundtrip_tables(plan: &NttPlan64) -> Result<NttPlan64, NttRestoreError> {
        let (fwd, inv) = plan.twiddle_tables();
        NttPlan64::from_tables(
            plan.ctx.q,
            plan.n,
            fwd.to_vec(),
            inv.to_vec(),
            plan.n_inv_pair().0,
        )
    }

    #[test]
    fn from_tables_roundtrips_bit_for_bit() {
        for n in [2usize, 4, 64, 512] {
            let fresh = NttPlan64::new(n);
            let restored = roundtrip_tables(&fresh).expect("a fresh plan's tables must validate");
            assert_eq!(restored.twiddle_tables(), fresh.twiddle_tables());
            assert_eq!(restored.n_inv_pair(), fresh.n_inv_pair(), "n = {n}");
            assert_eq!(restored.two_q(), fresh.two_q());
            let mut rng = StdRng::seed_from_u64(75);
            let data: Vec<u64> = (0..n).map(|_| rng.gen::<u64>() % fresh.ctx.q).collect();
            let mut a = data.clone();
            let mut b = data;
            fresh.forward(&mut a);
            restored.forward(&mut b);
            assert_eq!(a, b, "restored plan must transform identically (n = {n})");
        }
    }

    #[test]
    fn from_tables_rejects_tampering() {
        let plan = NttPlan64::new(64);
        let (fwd, inv) = plan.twiddle_tables();
        let (n_inv, _) = plan.n_inv_pair();
        let q = plan.ctx.q;

        // Out-of-range modulus.
        assert!(matches!(
            NttPlan64::from_tables(1 << 61, 64, fwd.to_vec(), inv.to_vec(), n_inv),
            Err(NttRestoreError::BadModulus { .. })
        ));
        // Truncated table.
        assert!(matches!(
            NttPlan64::from_tables(q, 64, fwd[..32].to_vec(), inv.to_vec(), n_inv),
            Err(NttRestoreError::BadShape { .. })
        ));
        // Unreduced entry.
        let mut big = fwd.to_vec();
        big[5] = q;
        assert!(matches!(
            NttPlan64::from_tables(q, 64, big, inv.to_vec(), n_inv),
            Err(NttRestoreError::Unreduced)
        ));
        // A flipped twiddle breaks an identity (inverse pairing or recurrence).
        let mut flipped = fwd.to_vec();
        flipped[37] ^= 1;
        assert!(matches!(
            NttPlan64::from_tables(q, 64, flipped, inv.to_vec(), n_inv),
            Err(NttRestoreError::InconsistentTables(_))
        ));
        // A consistently tampered pair (fwd and inv both changed so the product
        // stays 1) still breaks the stage recurrence.
        let mut f2 = fwd.to_vec();
        let mut i2 = inv.to_vec();
        f2[33] = plan.ctx.mul_mod(f2[33], f2[33]);
        i2[33] = plan.ctx.mul_mod(i2[33], i2[33]);
        assert!(matches!(
            NttPlan64::from_tables(q, 64, f2, i2, n_inv),
            Err(NttRestoreError::InconsistentTables(_))
        ));
        // Wrong scaling factor.
        assert!(matches!(
            NttPlan64::from_tables(q, 64, fwd.to_vec(), inv.to_vec(), n_inv ^ 1),
            Err(NttRestoreError::InconsistentTables(_))
        ));
        // Tables from a different (q, n) pair fail against this modulus: the
        // other plan's 60-bit twiddles are almost surely unreduced mod this q,
        // and whatever survives reduction cannot satisfy the identities.
        let other = NttPlan64::with_modulus(momaprime_other(), 64);
        let (ofwd, oinv) = other.twiddle_tables();
        assert!(
            NttPlan64::from_tables(q, 64, ofwd.to_vec(), oinv.to_vec(), n_inv).is_err(),
            "another modulus' tables must not validate"
        );
    }

    /// A second NTT-friendly prime (q ≡ 1 mod 2n for n = 64) distinct from the
    /// default evaluation modulus.
    fn momaprime_other() -> u64 {
        // 12289 = 3 · 2^12 + 1, the classic Falcon/NewHope modulus.
        12289
    }

    #[test]
    fn from_tables_accepts_alternate_modulus() {
        let fresh = NttPlan64::with_modulus(12289, 128);
        let restored = roundtrip_tables(&fresh).expect("alternate-modulus tables must validate");
        assert_eq!(restored.twiddle_tables(), fresh.twiddle_tables());
    }

    /// Schoolbook negacyclic convolution in `Z_q[X]/(X^n + 1)`: products that
    /// wrap past degree `n` come back negated.
    fn naive_negacyclic_mul(ctx: &SingleBarrett, a: &[u64], b: &[u64]) -> Vec<u64> {
        let n = a.len();
        let mut c = vec![0u64; n];
        for (i, &ai) in a.iter().enumerate() {
            for (j, &bj) in b.iter().enumerate() {
                let p = ctx.mul_mod(ai, bj);
                let k = (i + j) % n;
                c[k] = if i + j < n {
                    ctx.add_mod(c[k], p)
                } else {
                    ctx.sub_mod(c[k], p)
                };
            }
        }
        c
    }

    #[test]
    fn negacyclic_roundtrip_and_reduction() {
        for (q, n) in [(12289u64, 2usize), (12289, 8), (12289, 256)] {
            let plan = NttPlan64::negacyclic(q, n);
            assert!(plan.is_negacyclic());
            assert!(!NttPlan64::with_modulus(q, n).is_negacyclic());
            let psi = plan.psi().expect("negacyclic plan exposes ψ");
            assert_eq!(
                plan.ctx.pow_mod(psi, n as u64),
                q - 1,
                "ψ^n = −1 (q = {q}, n = {n})"
            );
            let mut rng = StdRng::seed_from_u64(q ^ n as u64);
            let data: Vec<u64> = (0..n).map(|_| rng.gen::<u64>() % q).collect();
            let mut work = data.clone();
            plan.forward(&mut work);
            assert!(work.iter().all(|&x| x < q), "forward outputs reduced");
            assert_ne!(work, data);
            plan.inverse(&mut work);
            assert!(work.iter().all(|&x| x < q), "inverse outputs reduced");
            assert_eq!(work, data, "inverse ∘ forward must be the identity");
        }
    }

    #[test]
    fn negacyclic_pointwise_product_matches_schoolbook_oracle() {
        for n in [4usize, 32, 128] {
            let plan = NttPlan64::negacyclic(12289, n);
            let ctx = plan.ctx;
            let mut rng = StdRng::seed_from_u64(1000 + n as u64);
            let a: Vec<u64> = (0..n).map(|_| rng.gen::<u64>() % ctx.q).collect();
            let b: Vec<u64> = (0..n).map(|_| rng.gen::<u64>() % ctx.q).collect();
            let expected = naive_negacyclic_mul(&ctx, &a, &b);
            let mut fa = a.clone();
            let mut fb = b.clone();
            plan.forward(&mut fa);
            plan.forward(&mut fb);
            let mut fc: Vec<u64> = fa
                .iter()
                .zip(&fb)
                .map(|(&x, &y)| ctx.mul_mod(x, y))
                .collect();
            plan.inverse(&mut fc);
            assert_eq!(
                fc, expected,
                "transform → pointwise → inverse must equal the X^n+1 schoolbook (n = {n})"
            );
        }
    }

    #[test]
    fn negacyclic_on_default_evaluation_modulus() {
        // The 60-bit paper modulus has the form c·2^32 + 1, so every power-of-two
        // 2n up to 2^32 divides q − 1 and the negacyclic plan exists at scale.
        let cyclic = NttPlan64::new(64);
        let q = cyclic.ctx.q;
        let plan = NttPlan64::negacyclic(q, 64);
        let ctx = plan.ctx;
        let mut rng = StdRng::seed_from_u64(77);
        let a: Vec<u64> = (0..64).map(|_| rng.gen::<u64>() % q).collect();
        let b: Vec<u64> = (0..64).map(|_| rng.gen::<u64>() % q).collect();
        let expected = naive_negacyclic_mul(&ctx, &a, &b);
        let mut fa = a.clone();
        let mut fb = b.clone();
        plan.forward(&mut fa);
        plan.forward(&mut fb);
        let mut fc: Vec<u64> = fa
            .iter()
            .zip(&fb)
            .map(|(&x, &y)| ctx.mul_mod(x, y))
            .collect();
        plan.inverse(&mut fc);
        assert_eq!(fc, expected);
    }

    #[test]
    fn negacyclic_from_tables_roundtrips_and_rejects_tampering() {
        let fresh = NttPlan64::negacyclic(12289, 64);
        let (fwd, inv) = fresh.twiddle_tables();
        let (n_inv, _) = fresh.n_inv_pair();
        let psi = fresh.psi().unwrap();
        let q = fresh.ctx.q;

        let restored =
            NttPlan64::from_tables_negacyclic(q, 64, fwd.to_vec(), inv.to_vec(), n_inv, psi)
                .expect("a fresh negacyclic plan's tables must validate");
        assert!(restored.is_negacyclic());
        assert_eq!(restored.psi(), Some(psi));
        let mut rng = StdRng::seed_from_u64(78);
        let data: Vec<u64> = (0..64).map(|_| rng.gen::<u64>() % q).collect();
        let mut a = data.clone();
        let mut b = data;
        fresh.forward(&mut a);
        restored.forward(&mut b);
        assert_eq!(a, b, "restored negacyclic plan must transform identically");
        fresh.inverse(&mut a);
        restored.inverse(&mut b);
        assert_eq!(a, b);

        // An unreduced ψ is rejected before any arithmetic.
        assert!(matches!(
            NttPlan64::from_tables_negacyclic(q, 64, fwd.to_vec(), inv.to_vec(), n_inv, q),
            Err(NttRestoreError::Unreduced)
        ));
        // A tampered ψ no longer squares to the tables' stage root.
        assert!(matches!(
            NttPlan64::from_tables_negacyclic(q, 64, fwd.to_vec(), inv.to_vec(), n_inv, psi ^ 1),
            Err(NttRestoreError::InconsistentTables(_))
        ));
        // −ψ is the other valid square root of ω: it must validate and produce
        // a plan that is its own consistent transform pair.
        let neg_psi = q - psi;
        let other =
            NttPlan64::from_tables_negacyclic(q, 64, fwd.to_vec(), inv.to_vec(), n_inv, neg_psi)
                .expect("−ψ is also a primitive 2n-th root");
        let mut rng = StdRng::seed_from_u64(79);
        let data: Vec<u64> = (0..64).map(|_| rng.gen::<u64>() % q).collect();
        let mut w = data.clone();
        other.forward(&mut w);
        other.inverse(&mut w);
        assert_eq!(w, data);
        // Tampered cyclic tables still fail closed through the base validation.
        let mut bad = fwd.to_vec();
        bad[33] ^= 1;
        assert!(NttPlan64::from_tables_negacyclic(q, 64, bad, inv.to_vec(), n_inv, psi).is_err());
    }
}
