//! Reference `O(n^2)` direct DFT over `Z_q` (Equation 12), used as the correctness
//! oracle for the fast transform.

use crate::params::NttParams;
use moma_mp::MpUint;

/// Computes `y[k] = Σ_j x[j]·ω^(jk) mod q` directly.
///
/// # Panics
///
/// Panics if `data.len() != params.n`.
pub fn naive_dft<const L: usize>(params: &NttParams<L>, data: &[MpUint<L>]) -> Vec<MpUint<L>> {
    assert_eq!(data.len(), params.n);
    let ring = &params.ring;
    let n = params.n as u64;
    let mut out = Vec::with_capacity(params.n);
    for k in 0..n {
        let mut acc = MpUint::<L>::ZERO;
        for (j, &x) in data.iter().enumerate() {
            let exponent = (j as u64 % n).wrapping_mul(k) % n;
            let w = ring.pow(params.omega, &MpUint::from_u64(exponent));
            acc = ring.add(acc, ring.mul(x, w));
        }
        out.push(acc);
    }
    out
}

/// Schoolbook polynomial multiplication over `Z_q` (Equation 11): the `O(n^2)` oracle
/// for NTT-based polynomial products.
pub fn schoolbook_polymul<const L: usize>(
    params: &NttParams<L>,
    a: &[MpUint<L>],
    b: &[MpUint<L>],
) -> Vec<MpUint<L>> {
    let ring = &params.ring;
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![MpUint::<L>::ZERO; a.len() + b.len() - 1];
    for (i, &ai) in a.iter().enumerate() {
        for (j, &bj) in b.iter().enumerate() {
            let prod = ring.mul(ai, bj);
            out[i + j] = ring.add(out[i + j], prod);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use moma_mp::MulAlgorithm;

    #[test]
    fn dft_of_delta_is_all_ones() {
        let params = NttParams::<2>::for_paper_modulus(8, 128, MulAlgorithm::Schoolbook);
        let mut delta = vec![MpUint::ZERO; 8];
        delta[0] = MpUint::ONE;
        let spectrum = naive_dft(&params, &delta);
        assert!(spectrum.iter().all(|&x| x == MpUint::ONE));
    }

    #[test]
    fn dft_of_constant_is_scaled_delta() {
        let params = NttParams::<2>::for_paper_modulus(8, 128, MulAlgorithm::Schoolbook);
        let ones = vec![MpUint::ONE; 8];
        let spectrum = naive_dft(&params, &ones);
        assert_eq!(spectrum[0], params.ring.reduce(MpUint::from_u64(8)));
        assert!(spectrum[1..].iter().all(|&x| x == MpUint::ZERO));
    }

    #[test]
    fn schoolbook_polymul_known_case() {
        let params = NttParams::<2>::for_paper_modulus(8, 128, MulAlgorithm::Schoolbook);
        // (1 + 2x)(3 + x) = 3 + 7x + 2x^2
        let a = vec![MpUint::from_u64(1), MpUint::from_u64(2)];
        let b = vec![MpUint::from_u64(3), MpUint::from_u64(1)];
        let prod = schoolbook_polymul(&params, &a, &b);
        assert_eq!(
            prod,
            vec![
                MpUint::from_u64(3),
                MpUint::from_u64(7),
                MpUint::from_u64(2)
            ]
        );
        assert!(schoolbook_polymul(&params, &[], &b).is_empty());
    }
}
