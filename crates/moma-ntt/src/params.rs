//! NTT parameters: prime moduli, roots of unity, and their inverses.

use moma_bignum::BigUint;
use moma_mp::{ModRing, MpUint, MulAlgorithm};

/// NTT-friendly prime moduli used throughout the evaluation, one per kernel bit-width.
///
/// Each prime has exactly `k − 4` bits for the `k`-bit kernel (the paper's Barrett
/// convention, §5.2) and is congruent to `1 (mod 2^32)`, so primitive roots of unity
/// exist for every transform size up to `2^32` — far beyond the largest size the paper
/// evaluates (`2^22`).
pub const PAPER_MODULI_HEX: [(u32, &str); 9] = [
    (64, "fffffa000000001"),
    (128, "fffffffffffffffffffffe100000001"),
    (192, "fffffffffffffffffffffffffffffffffffffd800000001"),
    (256, "fffffffffffffffffffffffffffffffffffffffffffffffffffffe200000001"),
    (320, "fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff7900000001"),
    (384, "fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff1500000001"),
    (512, "fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff1900000001"),
    (768, "fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff5100000001"),
    (1024, "ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffebc00000001"),
];

/// Returns the evaluation modulus for a given kernel bit-width as a [`BigUint`].
///
/// # Panics
///
/// Panics if the bit-width is not one of the evaluated widths.
pub fn paper_modulus(bits: u32) -> BigUint {
    let hex = PAPER_MODULI_HEX
        .iter()
        .find(|(b, _)| *b == bits)
        .unwrap_or_else(|| panic!("no evaluation modulus for {bits}-bit kernels"))
        .1;
    BigUint::from_hex(hex).expect("modulus table entries are valid hex")
}

/// Parameters for an `n`-point NTT over `L`-limb elements.
#[derive(Debug, Clone)]
pub struct NttParams<const L: usize> {
    /// Transform size (a power of two).
    pub n: usize,
    /// The coefficient ring `Z_q`.
    pub ring: ModRing<L>,
    /// A primitive `n`-th root of unity.
    pub omega: MpUint<L>,
    /// `omega^{-1} mod q`.
    pub omega_inv: MpUint<L>,
    /// `n^{-1} mod q` (for the inverse transform's final scaling).
    pub n_inv: MpUint<L>,
}

impl<const L: usize> NttParams<L> {
    /// Builds parameters for an `n`-point transform over the evaluation modulus for
    /// `bits`-bit kernels, using the requested multiplication algorithm for Barrett
    /// reduction.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two of at least 2, `n > 2^32`, or the modulus for
    /// `bits` does not fit `L` limbs.
    pub fn for_paper_modulus(n: usize, bits: u32, alg: MulAlgorithm) -> Self {
        assert!(
            n.is_power_of_two() && n >= 2,
            "NTT size must be a power of two"
        );
        assert!(
            n <= 1 << 32,
            "the evaluation moduli support sizes up to 2^32"
        );
        let q_big = paper_modulus(bits);
        let q = MpUint::<L>::from_limbs_le(&q_big.to_limbs_le(L));
        let ring = ModRing::with_mul_algorithm(q, alg);

        // A generator of the order-2^32 subgroup: g = 7^((q-1)/2^32) is primitive with
        // overwhelming probability for these prime shapes; verify and fall back to a
        // search if needed.
        let omega_big = find_root_of_unity(&q_big, n as u64);
        let omega = MpUint::<L>::from_limbs_le(&omega_big.to_limbs_le(L));
        let omega_inv = ring.inv(omega);
        let n_inv = ring.inv(ring.reduce(MpUint::from_u64(n as u64)));
        NttParams {
            n,
            ring,
            omega,
            omega_inv,
            n_inv,
        }
    }

    /// Precomputes the twiddle factors `omega^0 .. omega^(n/2 - 1)`.
    pub fn twiddles(&self) -> Vec<MpUint<L>> {
        let mut tw = Vec::with_capacity(self.n / 2);
        let mut cur = MpUint::<L>::ONE;
        for _ in 0..self.n / 2 {
            tw.push(cur);
            cur = self.ring.mul(cur, self.omega);
        }
        tw
    }

    /// Precomputes the inverse twiddle factors.
    pub fn inverse_twiddles(&self) -> Vec<MpUint<L>> {
        let mut tw = Vec::with_capacity(self.n / 2);
        let mut cur = MpUint::<L>::ONE;
        for _ in 0..self.n / 2 {
            tw.push(cur);
            cur = self.ring.mul(cur, self.omega_inv);
        }
        tw
    }
}

/// Finds a primitive `n`-th root of unity modulo `q`, where `n | q - 1`.
fn find_root_of_unity(q: &BigUint, n: u64) -> BigUint {
    let q_minus_1 = q - &BigUint::one();
    let n_big = BigUint::from(n);
    let cofactor = &q_minus_1 / &n_big;
    assert!(
        (&q_minus_1 % &n_big).is_zero(),
        "transform size must divide q - 1"
    );
    // Deterministic search over small candidate generators.
    for g in 3u64.. {
        let omega = BigUint::from(g).mod_pow(&cofactor, q);
        // omega has order dividing n; it is primitive iff omega^(n/2) != 1.
        if n == 1 || !omega.mod_pow(&BigUint::from(n / 2), q).is_one() {
            return omega;
        }
        if g > 1000 {
            break;
        }
    }
    panic!("no primitive root found (is q really of the form c*2^k + 1?)");
}

#[cfg(test)]
mod tests {
    use super::*;
    use moma_bignum::prime::is_prime;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn all_paper_moduli_are_valid() {
        let mut rng = StdRng::seed_from_u64(5);
        for (bits, _) in PAPER_MODULI_HEX {
            let q = paper_modulus(bits);
            assert_eq!(
                q.bits(),
                bits - 4,
                "modulus for {bits}-bit kernels has k-4 bits"
            );
            assert!(
                ((&q - &BigUint::one()) % &(BigUint::from(1u64) << 32)).is_zero(),
                "q - 1 divisible by 2^32"
            );
            assert!(is_prime(&mut rng, &q), "modulus for {bits} is prime");
        }
    }

    #[test]
    #[should_panic(expected = "no evaluation modulus")]
    fn unknown_width_rejected() {
        paper_modulus(96);
    }

    #[test]
    fn root_of_unity_has_exact_order() {
        let params = NttParams::<2>::for_paper_modulus(1024, 128, MulAlgorithm::Schoolbook);
        let ring = &params.ring;
        // omega^n = 1 and omega^(n/2) = q - 1 (i.e. -1).
        let pow_n = ring.pow(params.omega, &MpUint::from_u64(1024));
        let pow_half = ring.pow(params.omega, &MpUint::from_u64(512));
        assert_eq!(pow_n, MpUint::ONE);
        assert_eq!(pow_half, ring.modulus().wrapping_sub(&MpUint::ONE));
        // omega * omega_inv = 1, n * n_inv = 1.
        assert_eq!(ring.mul(params.omega, params.omega_inv), MpUint::ONE);
        let n_red = ring.reduce(MpUint::from_u64(1024));
        assert_eq!(ring.mul(n_red, params.n_inv), MpUint::ONE);
    }

    #[test]
    fn twiddles_are_distinct_powers() {
        let params = NttParams::<2>::for_paper_modulus(64, 128, MulAlgorithm::Schoolbook);
        let tw = params.twiddles();
        assert_eq!(tw.len(), 32);
        assert_eq!(tw[0], MpUint::ONE);
        assert_eq!(tw[1], params.omega);
        // No repetitions in the first n/2 powers of a primitive n-th root.
        for i in 0..tw.len() {
            for j in i + 1..tw.len() {
                assert_ne!(tw[i], tw[j], "twiddles {i} and {j} collide");
            }
        }
    }
}
