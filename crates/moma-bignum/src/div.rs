//! Division with remainder (Knuth, The Art of Computer Programming Vol. 2, Algorithm D).

use crate::BigUint;
use std::ops::{Div, Rem};

impl BigUint {
    /// Computes the quotient and remainder of `self / divisor`.
    ///
    /// Uses a single-limb short division when the divisor fits one limb, and Knuth's
    /// Algorithm D (normalized schoolbook long division with a two-limb quotient-digit
    /// estimate) otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    ///
    /// ```
    /// # use moma_bignum::BigUint;
    /// let a = BigUint::from(1000u64);
    /// let b = BigUint::from(7u64);
    /// let (q, r) = a.div_rem(&b);
    /// assert_eq!(q, BigUint::from(142u64));
    /// assert_eq!(r, BigUint::from(6u64));
    /// ```
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "division by zero");
        if self < divisor {
            return (BigUint::zero(), self.clone());
        }
        if divisor.limbs.len() == 1 {
            let (q, r) = self.div_rem_u64(divisor.limbs[0]);
            return (q, BigUint::from(r));
        }
        self.div_rem_knuth(divisor)
    }

    /// Divides by a single 64-bit word, returning quotient and remainder.
    ///
    /// # Panics
    ///
    /// Panics if `word` is zero.
    pub fn div_rem_u64(&self, word: u64) -> (BigUint, u64) {
        assert!(word != 0, "division by zero");
        let mut rem = 0u64;
        let mut out = vec![0u64; self.limbs.len()];
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem as u128) << 64 | self.limbs[i] as u128;
            out[i] = (cur / word as u128) as u64;
            rem = (cur % word as u128) as u64;
        }
        (BigUint::from_limbs_le(out), rem)
    }

    /// Knuth Algorithm D for divisors of at least two limbs.
    fn div_rem_knuth(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        // D1: normalize so the divisor's top limb has its high bit set.
        let shift = divisor.limbs.last().unwrap().leading_zeros();
        let u = self.shl_bits(shift);
        let v = divisor.shl_bits(shift);
        let n = v.limbs.len();
        let m = u.limbs.len() - n;

        // Working copy of the dividend with one extra high limb.
        let mut un = u.limbs.clone();
        un.push(0);
        let vn = &v.limbs;
        let v_hi = vn[n - 1];
        let v_lo = vn[n - 2];

        let mut quotient = vec![0u64; m + 1];

        // D2..D7: compute one quotient digit per iteration, most significant first.
        for j in (0..=m).rev() {
            // D3: estimate q̂ from the top two limbs of the current remainder window.
            let numerator = (un[j + n] as u128) << 64 | un[j + n - 1] as u128;
            let mut q_hat = numerator / v_hi as u128;
            let mut r_hat = numerator % v_hi as u128;
            // Refine: q̂ can be at most 2 too large.
            while q_hat >> 64 != 0 || q_hat * v_lo as u128 > (r_hat << 64 | un[j + n - 2] as u128) {
                q_hat -= 1;
                r_hat += v_hi as u128;
                if r_hat >> 64 != 0 {
                    break;
                }
            }

            // D4: multiply and subtract q̂ * v from the window un[j..j+n].
            let mut borrow: i128 = 0;
            let mut carry: u128 = 0;
            for i in 0..n {
                let p = q_hat * vn[i] as u128 + carry;
                carry = p >> 64;
                let sub = un[j + i] as i128 - (p as u64) as i128 + borrow;
                un[j + i] = sub as u64;
                borrow = sub >> 64; // arithmetic shift: 0 or -1
            }
            let sub = un[j + n] as i128 - carry as i128 + borrow;
            un[j + n] = sub as u64;
            borrow = sub >> 64;

            // D5/D6: if we subtracted too much (q̂ was one too large), add back.
            if borrow != 0 {
                q_hat -= 1;
                let mut carry = 0u128;
                for i in 0..n {
                    let s = un[j + i] as u128 + vn[i] as u128 + carry;
                    un[j + i] = s as u64;
                    carry = s >> 64;
                }
                un[j + n] = un[j + n].wrapping_add(carry as u64);
            }
            quotient[j] = q_hat as u64;
        }

        // D8: denormalize the remainder.
        let rem = BigUint::from_limbs_le(un[..n].to_vec()).shr_bits(shift);
        (BigUint::from_limbs_le(quotient), rem)
    }
}

impl Div<&BigUint> for &BigUint {
    type Output = BigUint;
    fn div(self, rhs: &BigUint) -> BigUint {
        self.div_rem(rhs).0
    }
}

impl Rem<&BigUint> for &BigUint {
    type Output = BigUint;
    fn rem(self, rhs: &BigUint) -> BigUint {
        self.div_rem(rhs).1
    }
}

impl Div<BigUint> for BigUint {
    type Output = BigUint;
    fn div(self, rhs: BigUint) -> BigUint {
        self.div_rem(&rhs).0
    }
}

impl Rem<BigUint> for BigUint {
    type Output = BigUint;
    fn rem(self, rhs: BigUint) -> BigUint {
        self.div_rem(&rhs).1
    }
}

impl Div<&BigUint> for BigUint {
    type Output = BigUint;
    fn div(self, rhs: &BigUint) -> BigUint {
        self.div_rem(rhs).0
    }
}

impl Rem<&BigUint> for BigUint {
    type Output = BigUint;
    fn rem(self, rhs: &BigUint) -> BigUint {
        self.div_rem(rhs).1
    }
}

impl Div<BigUint> for &BigUint {
    type Output = BigUint;
    fn div(self, rhs: BigUint) -> BigUint {
        self.div_rem(&rhs).0
    }
}

impl Rem<BigUint> for &BigUint {
    type Output = BigUint;
    fn rem(self, rhs: BigUint) -> BigUint {
        self.div_rem(&rhs).1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(s: &str) -> BigUint {
        BigUint::from_hex(s).unwrap()
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn divide_by_zero_panics() {
        let _ = BigUint::one().div_rem(&BigUint::zero());
    }

    #[test]
    fn small_cases() {
        let (q, r) = BigUint::from(100u64).div_rem(&BigUint::from(9u64));
        assert_eq!((q.to_u64(), r.to_u64()), (Some(11), Some(1)));
        let (q, r) = BigUint::from(5u64).div_rem(&BigUint::from(10u64));
        assert_eq!((q.to_u64(), r.to_u64()), (Some(0), Some(5)));
    }

    #[test]
    fn single_limb_divisor() {
        let a = big("123456789abcdef0fedcba9876543210aaaabbbbccccdddd");
        let (q, r) = a.div_rem(&BigUint::from(0xdeadbeefu64));
        assert_eq!(&q * &BigUint::from(0xdeadbeefu64) + &r, a);
        assert!(r < BigUint::from(0xdeadbeefu64));
    }

    #[test]
    fn multi_limb_reconstruction() {
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for a_limbs in [2usize, 3, 5, 8, 16, 20] {
            for b_limbs in [2usize, 3, 4, 8, 15] {
                if b_limbs > a_limbs {
                    continue;
                }
                let a = BigUint::from_limbs_le((0..a_limbs).map(|_| next()).collect());
                let b = BigUint::from_limbs_le((0..b_limbs).map(|_| next() | 1).collect());
                let (q, r) = a.div_rem(&b);
                assert!(r < b, "remainder bound {a_limbs}x{b_limbs}");
                assert_eq!(&(&q * &b) + &r, a, "reconstruction {a_limbs}x{b_limbs}");
            }
        }
    }

    #[test]
    fn knuth_add_back_case() {
        // Classic case exercising the D6 "add back" path: dividend crafted so the
        // first quotient-digit estimate is one too large.
        let u = BigUint::from_limbs_le(vec![0, 0, 0x8000_0000_0000_0000, 0x7fff_ffff_ffff_ffff]);
        let v = BigUint::from_limbs_le(vec![1, 0, 0x8000_0000_0000_0000]);
        let (q, r) = u.div_rem(&v);
        assert_eq!(&(&q * &v) + &r, u);
        assert!(r < v);
    }

    #[test]
    fn exact_divisions() {
        let a = big("fedcba9876543210fedcba9876543210");
        let b = big("1234567890abcdef");
        let prod = &a * &b;
        let (q, r) = prod.div_rem(&a);
        assert_eq!(q, b);
        assert!(r.is_zero());
        let (q, r) = prod.div_rem(&b);
        assert_eq!(q, a);
        assert!(r.is_zero());
    }
}
