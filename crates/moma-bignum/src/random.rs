//! Uniform random sampling of [`BigUint`] values.

use crate::BigUint;
use rand::Rng;

/// Samples a uniformly random integer with exactly `bits` significant bits
/// (the top bit is always set), so `2^(bits-1) <= x < 2^bits`.
///
/// # Panics
///
/// Panics if `bits` is zero.
///
/// ```
/// use moma_bignum::random::random_bits;
/// let mut rng = rand::thread_rng();
/// let x = random_bits(&mut rng, 256);
/// assert_eq!(x.bits(), 256);
/// ```
pub fn random_bits<R: Rng + ?Sized>(rng: &mut R, bits: u32) -> BigUint {
    assert!(bits > 0, "bits must be positive");
    let limbs = bits.div_ceil(64) as usize;
    let mut v: Vec<u64> = (0..limbs).map(|_| rng.gen()).collect();
    let top_bits = bits - (limbs as u32 - 1) * 64;
    let top = &mut v[limbs - 1];
    if top_bits < 64 {
        *top &= (1u64 << top_bits) - 1;
    }
    *top |= 1u64 << (top_bits - 1);
    BigUint::from_limbs_le(v)
}

/// Samples a uniformly random integer in `[0, bound)` by rejection sampling.
///
/// # Panics
///
/// Panics if `bound` is zero.
///
/// ```
/// use moma_bignum::{random::random_below, BigUint};
/// let mut rng = rand::thread_rng();
/// let bound = BigUint::from(1000u64);
/// let x = random_below(&mut rng, &bound);
/// assert!(x < bound);
/// ```
pub fn random_below<R: Rng + ?Sized>(rng: &mut R, bound: &BigUint) -> BigUint {
    assert!(!bound.is_zero(), "bound must be positive");
    let bits = bound.bits();
    let limbs = bits.div_ceil(64) as usize;
    let top_bits = bits - (limbs as u32 - 1) * 64;
    let mask = if top_bits == 64 {
        u64::MAX
    } else {
        (1u64 << top_bits) - 1
    };
    loop {
        let mut v: Vec<u64> = (0..limbs).map(|_| rng.gen()).collect();
        v[limbs - 1] &= mask;
        let candidate = BigUint::from_limbs_le(v);
        if &candidate < bound {
            return candidate;
        }
    }
}

/// Samples a uniformly random element of the ring `Z_q`, i.e. `[0, modulus)`.
///
/// Convenience alias of [`random_below`] named after its cryptographic use.
pub fn random_mod<R: Rng + ?Sized>(rng: &mut R, modulus: &BigUint) -> BigUint {
    random_below(rng, modulus)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_bits_has_exact_width() {
        let mut rng = StdRng::seed_from_u64(42);
        for bits in [1u32, 2, 63, 64, 65, 127, 128, 129, 381, 753, 1024] {
            let x = random_bits(&mut rng, bits);
            assert_eq!(x.bits(), bits, "width {bits}");
        }
    }

    #[test]
    fn random_below_respects_bound() {
        let mut rng = StdRng::seed_from_u64(7);
        let bound = BigUint::from_hex("1000000000000000000000001").unwrap();
        for _ in 0..100 {
            assert!(random_below(&mut rng, &bound) < bound);
        }
        // Tiny bound: only zero is possible.
        assert!(random_below(&mut rng, &BigUint::one()).is_zero());
    }

    #[test]
    fn random_values_are_not_constant() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = random_bits(&mut rng, 256);
        let b = random_bits(&mut rng, 256);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "bits must be positive")]
    fn zero_bits_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        random_bits(&mut rng, 0);
    }
}
