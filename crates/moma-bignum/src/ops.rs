//! Comparison, addition, subtraction, shifts and bitwise operations.
//!
//! These are the schoolbook multi-digit algorithms of the paper's §2.2 (Equations 6
//! and 7), generalized from two digits to `n` digits, with each 64-bit limb playing the
//! role of a digit.

use crate::BigUint;
use std::cmp::Ordering;
use std::ops::{Add, BitAnd, BitOr, BitXor, Shl, Shr, Sub};

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl BigUint {
    /// Adds `other` to `self`, returning the (possibly one limb larger) sum.
    #[allow(clippy::needless_range_loop)] // carry chain indexes two limb arrays in lockstep
    pub(crate) fn add_impl(&self, other: &BigUint) -> BigUint {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for i in 0..long.len() {
            let b = short.get(i).copied().unwrap_or(0);
            let (s1, c1) = long[i].overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry != 0 {
            out.push(carry);
        }
        BigUint::from_limbs_le(out)
    }

    /// Subtracts `other` from `self`.
    ///
    /// Returns `None` if `other > self` (the subtraction would underflow).
    ///
    /// ```
    /// # use moma_bignum::BigUint;
    /// let a = BigUint::from(10u64);
    /// let b = BigUint::from(4u64);
    /// assert_eq!(a.checked_sub(&b), Some(BigUint::from(6u64)));
    /// assert_eq!(b.checked_sub(&a), None);
    /// ```
    pub fn checked_sub(&self, other: &BigUint) -> Option<BigUint> {
        if self < other {
            return None;
        }
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        Some(BigUint::from_limbs_le(out))
    }

    /// Shifts left by `bits` bits.
    pub fn shl_bits(&self, bits: u32) -> BigUint {
        if self.is_zero() || bits == 0 {
            if bits == 0 {
                return self.clone();
            }
            return BigUint::zero();
        }
        let limb_shift = (bits / 64) as usize;
        let bit_shift = bits % 64;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push(l << bit_shift | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        BigUint::from_limbs_le(out)
    }

    /// Shifts right by `bits` bits (towards zero).
    pub fn shr_bits(&self, bits: u32) -> BigUint {
        let limb_shift = (bits / 64) as usize;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = bits % 64;
        let src = &self.limbs[limb_shift..];
        let mut out = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            out.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let hi = src.get(i + 1).copied().unwrap_or(0);
                out.push(src[i] >> bit_shift | (hi << (64 - bit_shift)));
            }
        }
        BigUint::from_limbs_le(out)
    }

    /// Returns the `count` low bits of the value (i.e. `self mod 2^count`).
    ///
    /// ```
    /// # use moma_bignum::BigUint;
    /// let x = BigUint::from(0b1011_0110u64);
    /// assert_eq!(x.low_bits(4), BigUint::from(0b0110u64));
    /// ```
    pub fn low_bits(&self, count: u32) -> BigUint {
        let full = (count / 64) as usize;
        let rem = count % 64;
        let mut limbs: Vec<u64> = self.limbs.iter().copied().take(full + 1).collect();
        if limbs.len() > full {
            if rem == 0 {
                limbs.truncate(full);
            } else {
                limbs[full] &= (1u64 << rem) - 1;
            }
        }
        BigUint::from_limbs_le(limbs)
    }
}

macro_rules! forward_binop {
    ($trait_:ident, $method:ident, $impl_:ident) => {
        impl $trait_<&BigUint> for &BigUint {
            type Output = BigUint;
            fn $method(self, rhs: &BigUint) -> BigUint {
                self.$impl_(rhs)
            }
        }
        impl $trait_<BigUint> for BigUint {
            type Output = BigUint;
            fn $method(self, rhs: BigUint) -> BigUint {
                (&self).$impl_(&rhs)
            }
        }
        impl $trait_<&BigUint> for BigUint {
            type Output = BigUint;
            fn $method(self, rhs: &BigUint) -> BigUint {
                (&self).$impl_(rhs)
            }
        }
        impl $trait_<BigUint> for &BigUint {
            type Output = BigUint;
            fn $method(self, rhs: BigUint) -> BigUint {
                self.$impl_(&rhs)
            }
        }
    };
}

forward_binop!(Add, add, add_impl);

impl BigUint {
    fn sub_impl(&self, rhs: &BigUint) -> BigUint {
        self.checked_sub(rhs)
            .expect("attempt to subtract with overflow (BigUint is unsigned)")
    }

    fn bitand_impl(&self, rhs: &BigUint) -> BigUint {
        let n = self.limbs.len().min(rhs.limbs.len());
        BigUint::from_limbs_le((0..n).map(|i| self.limbs[i] & rhs.limbs[i]).collect())
    }

    fn bitor_impl(&self, rhs: &BigUint) -> BigUint {
        let n = self.limbs.len().max(rhs.limbs.len());
        BigUint::from_limbs_le(
            (0..n)
                .map(|i| {
                    self.limbs.get(i).copied().unwrap_or(0) | rhs.limbs.get(i).copied().unwrap_or(0)
                })
                .collect(),
        )
    }

    fn bitxor_impl(&self, rhs: &BigUint) -> BigUint {
        let n = self.limbs.len().max(rhs.limbs.len());
        BigUint::from_limbs_le(
            (0..n)
                .map(|i| {
                    self.limbs.get(i).copied().unwrap_or(0) ^ rhs.limbs.get(i).copied().unwrap_or(0)
                })
                .collect(),
        )
    }
}

forward_binop!(Sub, sub, sub_impl);
forward_binop!(BitAnd, bitand, bitand_impl);
forward_binop!(BitOr, bitor, bitor_impl);
forward_binop!(BitXor, bitxor, bitxor_impl);

impl Shl<u32> for BigUint {
    type Output = BigUint;
    fn shl(self, rhs: u32) -> BigUint {
        self.shl_bits(rhs)
    }
}

impl Shl<u32> for &BigUint {
    type Output = BigUint;
    fn shl(self, rhs: u32) -> BigUint {
        self.shl_bits(rhs)
    }
}

impl Shr<u32> for BigUint {
    type Output = BigUint;
    fn shr(self, rhs: u32) -> BigUint {
        self.shr_bits(rhs)
    }
}

impl Shr<u32> for &BigUint {
    type Output = BigUint;
    fn shr(self, rhs: u32) -> BigUint {
        self.shr_bits(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(s: &str) -> BigUint {
        BigUint::from_hex(s).unwrap()
    }

    #[test]
    fn ordering_by_length_and_lexicographic() {
        assert!(BigUint::zero() < BigUint::one());
        assert!(big("ffffffffffffffff") < big("10000000000000000"));
        assert!(big("20000000000000001") > big("20000000000000000"));
        assert_eq!(big("ab").cmp(&big("ab")), Ordering::Equal);
    }

    #[test]
    fn addition_with_carry_chain() {
        let a = big("ffffffffffffffffffffffffffffffff");
        let one = BigUint::one();
        assert_eq!(&a + &one, big("100000000000000000000000000000000"));
        assert_eq!(&BigUint::zero() + &a, a);
    }

    #[test]
    fn subtraction_with_borrow_chain() {
        let a = big("100000000000000000000000000000000");
        let one = BigUint::one();
        assert_eq!(&a - &one, big("ffffffffffffffffffffffffffffffff"));
        assert_eq!(a.checked_sub(&(&a + &one)), None);
        assert_eq!(&a - &a, BigUint::zero());
    }

    #[test]
    #[should_panic(expected = "subtract with overflow")]
    fn subtraction_underflow_panics() {
        let _ = BigUint::one() - BigUint::from(2u64);
    }

    #[test]
    fn shifts_round_trip() {
        let a = big("123456789abcdef0fedcba9876543210");
        for bits in [0u32, 1, 7, 63, 64, 65, 127, 128, 200] {
            let shifted = a.shl_bits(bits);
            assert_eq!(shifted.shr_bits(bits), a, "round trip at {bits}");
            assert_eq!(shifted.bits(), a.bits() + bits);
        }
        assert_eq!(a.shr_bits(4096), BigUint::zero());
    }

    #[test]
    fn low_bits_masks() {
        let a = big("ffffffffffffffffffffffffffffffff");
        assert_eq!(a.low_bits(0), BigUint::zero());
        assert_eq!(a.low_bits(4), BigUint::from(0xfu64));
        assert_eq!(a.low_bits(64), BigUint::from(u64::MAX));
        assert_eq!(a.low_bits(128), a);
        assert_eq!(a.low_bits(300), a);
    }

    #[test]
    fn bitwise_ops() {
        let a = big("f0f0f0f0f0f0f0f0f0");
        let b = big("ff00ff00ff");
        assert_eq!(&a & &b, big("f000f000f0"));
        assert_eq!(&a | &b, big("f0f0f0f0fff0fff0ff"));
        assert_eq!(&a ^ &a, BigUint::zero());
        assert_eq!(&a ^ &BigUint::zero(), a);
    }
}
