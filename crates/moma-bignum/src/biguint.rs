//! The [`BigUint`] type: representation, construction, and basic queries.

/// An arbitrary-precision unsigned integer.
///
/// The value is stored as little-endian 64-bit limbs with the invariant that the most
/// significant limb is non-zero (so zero is represented by an empty limb vector). All
/// public constructors and operations maintain this normalization.
///
/// The paper's multi-digit notation `[x_0, x_1, ..., x_{k-1}]_z` (Equation 5) lists
/// digits most-significant first; we store limbs least-significant first, the usual
/// machine convention, and convert at the formatting boundary.
///
/// # Example
///
/// ```
/// use moma_bignum::BigUint;
///
/// let x = BigUint::from(10u64).pow(30);
/// assert_eq!(x.to_string(), "1000000000000000000000000000000");
/// assert_eq!(x.bits(), 100);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    pub(crate) limbs: Vec<u64>,
}

impl BigUint {
    /// The value zero.
    ///
    /// ```
    /// # use moma_bignum::BigUint;
    /// assert!(BigUint::zero().is_zero());
    /// ```
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value one.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Creates a value from little-endian limbs, normalizing trailing zero limbs.
    ///
    /// ```
    /// # use moma_bignum::BigUint;
    /// let x = BigUint::from_limbs_le(vec![5, 0, 0]);
    /// assert_eq!(x, BigUint::from(5u64));
    /// ```
    pub fn from_limbs_le(mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigUint { limbs }
    }

    /// Creates a value from big-endian limbs (the paper's digit order in Equation 14).
    pub fn from_limbs_be(limbs: &[u64]) -> Self {
        let mut le: Vec<u64> = limbs.to_vec();
        le.reverse();
        Self::from_limbs_le(le)
    }

    /// Returns the little-endian limbs (no trailing zeros; empty for zero).
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Returns the limbs zero-extended to exactly `n` limbs, little-endian.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit in `n` limbs.
    pub fn to_limbs_le(&self, n: usize) -> Vec<u64> {
        assert!(
            self.limbs.len() <= n,
            "value with {} limbs does not fit in {} limbs",
            self.limbs.len(),
            n
        );
        let mut v = self.limbs.clone();
        v.resize(n, 0);
        v
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Returns `true` if the value is one.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// Returns `true` if the value is even. Zero counts as even.
    pub fn is_even(&self) -> bool {
        self.limbs.first().map_or(true, |l| l & 1 == 0)
    }

    /// Returns `true` if the value is odd.
    pub fn is_odd(&self) -> bool {
        !self.is_even()
    }

    /// Number of significant bits (`0` for zero).
    ///
    /// ```
    /// # use moma_bignum::BigUint;
    /// assert_eq!(BigUint::from(0u64).bits(), 0);
    /// assert_eq!(BigUint::from(255u64).bits(), 8);
    /// assert_eq!(BigUint::from(256u64).bits(), 9);
    /// ```
    pub fn bits(&self) -> u32 {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() as u32 - 1) * 64 + (64 - top.leading_zeros()),
        }
    }

    /// Returns bit `i` (counting from the least significant bit).
    pub fn bit(&self, i: u32) -> bool {
        let limb = (i / 64) as usize;
        match self.limbs.get(limb) {
            None => false,
            Some(&l) => (l >> (i % 64)) & 1 == 1,
        }
    }

    /// Raises the value to a small power by repeated squaring.
    ///
    /// ```
    /// # use moma_bignum::BigUint;
    /// assert_eq!(BigUint::from(2u64).pow(10), BigUint::from(1024u64));
    /// ```
    pub fn pow(&self, mut exp: u32) -> BigUint {
        let mut base = self.clone();
        let mut acc = BigUint::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = &acc * &base;
            }
            base = &base * &base;
            exp >>= 1;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_empty_and_even() {
        let z = BigUint::zero();
        assert!(z.is_zero());
        assert!(z.is_even());
        assert_eq!(z.bits(), 0);
        assert_eq!(z.limbs(), &[] as &[u64]);
    }

    #[test]
    fn from_limbs_normalizes() {
        let x = BigUint::from_limbs_le(vec![1, 2, 0, 0]);
        assert_eq!(x.limbs(), &[1, 2]);
        let y = BigUint::from_limbs_be(&[0, 0, 2, 1]);
        assert_eq!(x, y);
    }

    #[test]
    fn bits_and_bit_access() {
        let x = BigUint::from(0x8000_0000_0000_0000u64);
        assert_eq!(x.bits(), 64);
        assert!(x.bit(63));
        assert!(!x.bit(62));
        assert!(!x.bit(64));
        let y = BigUint::from_limbs_le(vec![0, 1]);
        assert_eq!(y.bits(), 65);
        assert!(y.bit(64));
    }

    #[test]
    fn to_limbs_le_pads() {
        let x = BigUint::from(7u64);
        assert_eq!(x.to_limbs_le(4), vec![7, 0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn to_limbs_le_panics_when_too_small() {
        BigUint::from_limbs_le(vec![1, 2, 3]).to_limbs_le(2);
    }

    #[test]
    fn pow_small_cases() {
        assert_eq!(BigUint::from(3u64).pow(0), BigUint::one());
        assert_eq!(BigUint::from(3u64).pow(1), BigUint::from(3u64));
        assert_eq!(BigUint::from(3u64).pow(4), BigUint::from(81u64));
        assert_eq!(BigUint::from(2u64).pow(100).bits(), 101);
    }

    #[test]
    fn parity() {
        assert!(BigUint::from(4u64).is_even());
        assert!(BigUint::from(5u64).is_odd());
        assert!(BigUint::one().is_one());
    }
}
