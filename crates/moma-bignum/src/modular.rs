//! Modular arithmetic on [`BigUint`]: the reference (oracle) implementations of the
//! operations the paper's generated kernels compute (Equations 1–4).

use crate::BigUint;

impl BigUint {
    /// Reduces `self` modulo `modulus`.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero.
    pub fn reduce(&self, modulus: &BigUint) -> BigUint {
        self % modulus
    }

    /// Modular addition `(self + other) mod modulus` (paper Equation 2).
    ///
    /// Both inputs must already be reduced; the result is then obtained with a single
    /// conditional subtraction, exactly as the generated kernels do.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if either operand is not reduced.
    pub fn mod_add(&self, other: &BigUint, modulus: &BigUint) -> BigUint {
        debug_assert!(
            self < modulus && other < modulus,
            "operands must be reduced"
        );
        let sum = self + other;
        if &sum >= modulus {
            sum - modulus
        } else {
            sum
        }
    }

    /// Modular subtraction `(self - other) mod modulus` (paper Equation 3).
    pub fn mod_sub(&self, other: &BigUint, modulus: &BigUint) -> BigUint {
        debug_assert!(
            self < modulus && other < modulus,
            "operands must be reduced"
        );
        if self < other {
            self + modulus - other
        } else {
            self - other
        }
    }

    /// Modular multiplication `(self * other) mod modulus` (paper Equation 4), computed
    /// with a full product followed by division — the baseline strategy a GMP user
    /// would write (`mpz_mul` + `mpz_mod`).
    pub fn mod_mul(&self, other: &BigUint, modulus: &BigUint) -> BigUint {
        (self * other) % modulus
    }

    /// Modular exponentiation by square-and-multiply (left-to-right).
    ///
    /// ```
    /// # use moma_bignum::BigUint;
    /// let q = BigUint::from(97u64);
    /// let x = BigUint::from(5u64);
    /// assert_eq!(x.mod_pow(&BigUint::from(96u64), &q), BigUint::one()); // Fermat
    /// ```
    pub fn mod_pow(&self, exponent: &BigUint, modulus: &BigUint) -> BigUint {
        assert!(!modulus.is_zero(), "division by zero");
        if modulus.is_one() {
            return BigUint::zero();
        }
        let mut result = BigUint::one();
        let base = self % modulus;
        let bits = exponent.bits();
        for i in (0..bits).rev() {
            result = result.mod_mul(&result, modulus);
            if exponent.bit(i) {
                result = result.mod_mul(&base, modulus);
            }
        }
        result
    }

    /// Modular multiplicative inverse via the extended Euclidean algorithm.
    ///
    /// Returns `None` if `gcd(self, modulus) != 1` (no inverse exists).
    ///
    /// ```
    /// # use moma_bignum::BigUint;
    /// let q = BigUint::from(97u64);
    /// let x = BigUint::from(35u64);
    /// let inv = x.mod_inverse(&q).unwrap();
    /// assert_eq!(x.mod_mul(&inv, &q), BigUint::one());
    /// ```
    pub fn mod_inverse(&self, modulus: &BigUint) -> Option<BigUint> {
        if modulus.is_zero() || self.is_zero() {
            return None;
        }
        // Extended Euclid with sign-tracked coefficients:
        // invariant  s_i * self ≡ r_i (mod modulus).
        let mut r0 = modulus.clone();
        let mut r1 = self % modulus;
        let mut s0 = (BigUint::zero(), false); // (magnitude, negative?)
        let mut s1 = (BigUint::one(), false);
        while !r1.is_zero() {
            let (q, r2) = r0.div_rem(&r1);
            // s2 = s0 - q * s1  (signed)
            let qs1 = (&q * &s1.0, s1.1);
            let s2 = signed_sub(&s0, &qs1);
            r0 = r1;
            r1 = r2;
            s0 = s1;
            s1 = s2;
        }
        if !r0.is_one() {
            return None;
        }
        let inv = if s0.1 {
            modulus - (&s0.0 % modulus)
        } else {
            &s0.0 % modulus
        };
        Some(inv % modulus)
    }

    /// Greatest common divisor (Euclid's algorithm).
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let r = &a % &b;
            a = b;
            b = r;
        }
        a
    }
}

/// Subtracts two sign-magnitude numbers: `a - b`.
fn signed_sub(a: &(BigUint, bool), b: &(BigUint, bool)) -> (BigUint, bool) {
    match (a.1, b.1) {
        // a - b with both positive
        (false, false) => {
            if a.0 >= b.0 {
                (&a.0 - &b.0, false)
            } else {
                (&b.0 - &a.0, true)
            }
        }
        // a - (-b) = a + b
        (false, true) => (&a.0 + &b.0, false),
        // -a - b = -(a + b)
        (true, false) => (&a.0 + &b.0, true),
        // -a - (-b) = b - a
        (true, true) => {
            if b.0 >= a.0 {
                (&b.0 - &a.0, false)
            } else {
                (&a.0 - &b.0, true)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(s: &str) -> BigUint {
        BigUint::from_hex(s).unwrap()
    }

    #[test]
    fn mod_add_sub_within_ring() {
        let q = BigUint::from(1_000_003u64);
        let a = BigUint::from(999_999u64);
        let b = BigUint::from(7u64);
        assert_eq!(a.mod_add(&b, &q), BigUint::from(3u64));
        assert_eq!(b.mod_sub(&a, &q), BigUint::from(1_000_003 - 999_992u64));
        assert_eq!(a.mod_sub(&a, &q), BigUint::zero());
    }

    #[test]
    fn mod_mul_matches_definition() {
        let q = big("ffffffffffffffffffffffffffffff61"); // 128-bit prime-ish modulus
        let a = big("123456789abcdef0123456789abcdef0");
        let b = big("fedcba9876543210fedcba9876543210");
        let c = a.mod_mul(&b, &q);
        assert_eq!(c, (&a * &b) % &q);
        assert!(c < q);
    }

    #[test]
    fn mod_pow_edge_cases() {
        let q = BigUint::from(13u64);
        assert_eq!(
            BigUint::from(5u64).mod_pow(&BigUint::zero(), &q),
            BigUint::one()
        );
        assert_eq!(
            BigUint::from(5u64).mod_pow(&BigUint::one(), &q),
            BigUint::from(5u64)
        );
        assert_eq!(
            BigUint::from(5u64).mod_pow(&BigUint::from(2u64), &q),
            BigUint::from(12u64)
        );
        // Modulus one: everything is zero.
        assert_eq!(
            BigUint::from(5u64).mod_pow(&BigUint::from(100u64), &BigUint::one()),
            BigUint::zero()
        );
    }

    #[test]
    fn fermat_little_theorem_128_bit() {
        // q = 2^127 - 1 is a Mersenne prime.
        let q = (BigUint::from(1u64) << 127) - BigUint::one();
        let a = big("123456789abcdef0fedcba9876543210");
        assert_eq!(a.mod_pow(&(&q - &BigUint::one()), &q), BigUint::one());
    }

    #[test]
    fn mod_inverse_round_trips() {
        let q = (BigUint::from(1u64) << 127) - BigUint::one();
        for seed in 1u64..20 {
            let a = BigUint::from(seed.wrapping_mul(0x9e3779b97f4a7c15));
            let inv = a.mod_inverse(&q).expect("prime modulus: inverse exists");
            assert_eq!(a.mod_mul(&inv, &q), BigUint::one());
        }
    }

    #[test]
    fn mod_inverse_nonexistent() {
        let q = BigUint::from(12u64);
        assert_eq!(BigUint::from(8u64).mod_inverse(&q), None);
        assert_eq!(BigUint::zero().mod_inverse(&q), None);
        assert_eq!(
            BigUint::from(5u64).mod_inverse(&q),
            Some(BigUint::from(5u64))
        );
    }

    #[test]
    fn gcd_cases() {
        assert_eq!(
            BigUint::from(48u64).gcd(&BigUint::from(36u64)),
            BigUint::from(12u64)
        );
        assert_eq!(
            BigUint::from(17u64).gcd(&BigUint::from(13u64)),
            BigUint::one()
        );
        assert_eq!(
            BigUint::zero().gcd(&BigUint::from(5u64)),
            BigUint::from(5u64)
        );
    }
}
