//! Primality testing and generation of NTT-friendly prime moduli.
//!
//! The paper evaluates NTTs over "general" primes of a given bit-width (no Goldilocks
//! or Montgomery-friendly structure, §5.3). An `n`-point NTT over `Z_q` needs a
//! primitive `n`-th root of unity, which exists iff `n | q - 1`; we therefore generate
//! primes of the form `q = c * 2^e + 1` ("Proth-form" / NTT-friendly primes) with the
//! requested bit-width and `2^e` dividing `q - 1` for the largest transform we intend
//! to run.

use crate::random::{random_below, random_bits};
use crate::BigUint;
use rand::Rng;

/// Number of Miller–Rabin rounds used by [`is_prime`]. 40 rounds gives an error
/// probability below 2^-80 for random candidates.
pub const MILLER_RABIN_ROUNDS: u32 = 40;

/// Deterministic small-prime trial division table used to cheaply reject candidates.
const SMALL_PRIMES: [u64; 25] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
];

/// Probabilistic primality test (trial division + Miller–Rabin).
///
/// ```
/// use moma_bignum::{prime::is_prime, BigUint};
/// let mut rng = rand::thread_rng();
/// // 2^127 - 1 is a Mersenne prime.
/// let p = (BigUint::from(1u64) << 127) - BigUint::one();
/// assert!(is_prime(&mut rng, &p));
/// assert!(!is_prime(&mut rng, &(p + BigUint::from(2u64))));
/// ```
pub fn is_prime<R: Rng + ?Sized>(rng: &mut R, n: &BigUint) -> bool {
    if n < &BigUint::from(2u64) {
        return false;
    }
    for &p in &SMALL_PRIMES {
        let p_big = BigUint::from(p);
        if n == &p_big {
            return true;
        }
        if (n % &p_big).is_zero() {
            return false;
        }
    }
    miller_rabin(rng, n, MILLER_RABIN_ROUNDS)
}

/// Miller–Rabin with `rounds` random bases. `n` must be odd and greater than 3.
fn miller_rabin<R: Rng + ?Sized>(rng: &mut R, n: &BigUint, rounds: u32) -> bool {
    let one = BigUint::one();
    let two = BigUint::from(2u64);
    let n_minus_1 = n - &one;
    // Write n - 1 = d * 2^s with d odd.
    let mut d = n_minus_1.clone();
    let mut s = 0u32;
    while d.is_even() {
        d = d >> 1;
        s += 1;
    }
    'witness: for _ in 0..rounds {
        let a = &random_below(rng, &(n - &BigUint::from(4u64))) + &two; // a in [2, n-2]
        let mut x = a.mod_pow(&d, n);
        if x == one || x == n_minus_1 {
            continue 'witness;
        }
        for _ in 0..s - 1 {
            x = x.mod_mul(&x, n);
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Generates a random prime with exactly `bits` bits.
///
/// # Panics
///
/// Panics if `bits < 2`.
pub fn random_prime<R: Rng + ?Sized>(rng: &mut R, bits: u32) -> BigUint {
    assert!(bits >= 2, "a prime needs at least 2 bits");
    loop {
        let mut candidate = random_bits(rng, bits);
        if candidate.is_even() {
            candidate = candidate + BigUint::one();
        }
        if candidate.bits() == bits && is_prime(rng, &candidate) {
            return candidate;
        }
    }
}

/// Generates an NTT-friendly prime `q` with exactly `bits` bits such that
/// `2^two_adicity` divides `q - 1`.
///
/// The returned prime supports NTTs of any power-of-two size up to `2^two_adicity`.
///
/// # Panics
///
/// Panics if `two_adicity + 2 > bits` (no such prime can exist with that shape).
///
/// ```
/// use moma_bignum::{prime::ntt_friendly_prime, BigUint};
/// let mut rng = rand::thread_rng();
/// let q = ntt_friendly_prime(&mut rng, 64, 20);
/// assert_eq!(q.bits(), 64);
/// assert!(((q - BigUint::one()) % (BigUint::from(1u64) << 20)).is_zero());
/// ```
pub fn ntt_friendly_prime<R: Rng + ?Sized>(rng: &mut R, bits: u32, two_adicity: u32) -> BigUint {
    assert!(
        two_adicity + 2 <= bits,
        "two_adicity {two_adicity} too large for {bits}-bit prime"
    );
    let pow2 = BigUint::from(1u64) << two_adicity;
    loop {
        // q = c * 2^e + 1 with c random of (bits - e) bits and odd top bit set.
        let c = random_bits(rng, bits - two_adicity);
        let q = &(&c * &pow2) + &BigUint::one();
        if q.bits() == bits && is_prime(rng, &q) {
            return q;
        }
    }
}

/// Finds a generator of the order-`2^two_adicity` subgroup of `Z_q^*`, i.e. a primitive
/// `2^two_adicity`-th root of unity modulo `q`.
///
/// `q` must be prime with `2^two_adicity | q - 1`. Returns `omega` such that
/// `omega^(2^two_adicity) = 1` and `omega^(2^(two_adicity-1)) != 1`.
pub fn primitive_root_of_unity<R: Rng + ?Sized>(
    rng: &mut R,
    q: &BigUint,
    two_adicity: u32,
) -> BigUint {
    assert!(two_adicity >= 1);
    let q_minus_1 = q - &BigUint::one();
    let cofactor = &q_minus_1 >> two_adicity;
    assert!(
        (&q_minus_1 - &(&cofactor * &(BigUint::from(1u64) << two_adicity))).is_zero(),
        "2^{two_adicity} must divide q-1"
    );
    let half_order_exp = BigUint::from(1u64) << (two_adicity - 1);
    loop {
        let g = &random_below(rng, &(&q_minus_1 - &BigUint::one())) + &BigUint::from(2u64);
        let omega = g.mod_pow(&cofactor, q);
        // omega has order dividing 2^two_adicity; it is primitive iff
        // omega^(2^(two_adicity-1)) != 1.
        if !omega.mod_pow(&half_order_exp, q).is_one() {
            return omega;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn small_prime_classification() {
        let mut rng = StdRng::seed_from_u64(1);
        let primes = [2u64, 3, 5, 7, 97, 65537, 4294967291];
        let composites = [0u64, 1, 4, 9, 91, 65535, 4294967295];
        for p in primes {
            assert!(is_prime(&mut rng, &BigUint::from(p)), "{p} is prime");
        }
        for c in composites {
            assert!(!is_prime(&mut rng, &BigUint::from(c)), "{c} is composite");
        }
    }

    #[test]
    fn carmichael_numbers_are_rejected() {
        let mut rng = StdRng::seed_from_u64(2);
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911] {
            assert!(
                !is_prime(&mut rng, &BigUint::from(c)),
                "{c} is a Carmichael number"
            );
        }
    }

    #[test]
    fn known_large_primes() {
        let mut rng = StdRng::seed_from_u64(3);
        // 2^127 - 1 (Mersenne) and the Goldilocks prime 2^64 - 2^32 + 1.
        let m127 = (BigUint::from(1u64) << 127) - BigUint::one();
        assert!(is_prime(&mut rng, &m127));
        assert!(is_prime(&mut rng, &BigUint::from(0xffff_ffff_0000_0001u64)));
    }

    #[test]
    fn random_prime_has_requested_width() {
        let mut rng = StdRng::seed_from_u64(4);
        for bits in [32u32, 64, 96] {
            let p = random_prime(&mut rng, bits);
            assert_eq!(p.bits(), bits);
            assert!(is_prime(&mut rng, &p));
        }
    }

    #[test]
    fn ntt_friendly_prime_structure() {
        let mut rng = StdRng::seed_from_u64(5);
        let q = ntt_friendly_prime(&mut rng, 60, 16);
        assert_eq!(q.bits(), 60);
        assert!(((&q - &BigUint::one()) % &(BigUint::from(1u64) << 16)).is_zero());
        assert!(is_prime(&mut rng, &q));
    }

    #[test]
    fn primitive_root_has_exact_order() {
        let mut rng = StdRng::seed_from_u64(6);
        let two_adicity = 12;
        let q = ntt_friendly_prime(&mut rng, 62, two_adicity);
        let omega = primitive_root_of_unity(&mut rng, &q, two_adicity);
        let full = BigUint::from(1u64) << two_adicity;
        let half = BigUint::from(1u64) << (two_adicity - 1);
        assert!(omega.mod_pow(&full, &q).is_one());
        assert!(!omega.mod_pow(&half, &q).is_one());
    }
}
