//! Arbitrary-precision unsigned integer arithmetic.
//!
//! This crate is the repository's stand-in for the GNU Multiple Precision library
//! (GMP), which the paper uses both as the CPU baseline in Figure 2 / Figure 4 and,
//! implicitly, as the ground truth for all fixed-width kernels. Everything is written
//! from scratch on top of 64-bit limbs:
//!
//! * [`BigUint`] — a dynamically sized unsigned integer (little-endian `u64` limbs),
//! * schoolbook and Karatsuba multiplication ([`BigUint::mul_schoolbook`],
//!   [`BigUint::mul_karatsuba`]),
//! * Knuth Algorithm D division ([`BigUint::div_rem`]),
//! * modular arithmetic ([`BigUint::mod_add`], [`BigUint::mod_mul`],
//!   [`BigUint::mod_pow`], [`BigUint::mod_inverse`]),
//! * primality testing and prime generation ([`prime`]),
//! * uniform random sampling ([`random`]).
//!
//! The same algorithmic regime as GMP applies for the bit-widths relevant to the paper
//! (128–1,024 bits): schoolbook/Karatsuba multiplication and word-by-word division.
//! GMP's FFT-based multiplication only becomes relevant far above 1,024 bits, which the
//! paper's §7 calls out explicitly.
//!
//! # Example
//!
//! ```
//! use moma_bignum::BigUint;
//!
//! let a = BigUint::from_hex("ffffffffffffffffffffffffffffffff").unwrap();
//! let b = BigUint::from(3u64);
//! let q = BigUint::from_hex("fffffffffffffffffffffffffffffff1").unwrap();
//! let c = a.mod_mul(&b, &q);
//! assert!(c < q);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod biguint;
mod convert;
mod div;
mod fmt;
mod modular;
mod mul;
mod ops;
pub mod prime;
pub mod random;

pub use biguint::BigUint;
pub use convert::ParseBigUintError;

/// Number of bits in one limb (`u64`).
pub const LIMB_BITS: u32 = 64;
