//! Conversions between [`BigUint`] and primitive integers / strings.

use crate::BigUint;
use std::error::Error;
use std::fmt;
use std::str::FromStr;

/// Error returned when parsing a [`BigUint`] from a string fails.
///
/// ```
/// use moma_bignum::BigUint;
/// assert!("12a4".parse::<BigUint>().is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBigUintError {
    kind: ParseErrorKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum ParseErrorKind {
    Empty,
    InvalidDigit(char),
}

impl fmt::Display for ParseBigUintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            ParseErrorKind::Empty => write!(f, "cannot parse integer from empty string"),
            ParseErrorKind::InvalidDigit(c) => write!(f, "invalid digit found in string: {c:?}"),
        }
    }
}

impl Error for ParseBigUintError {}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        if v == 0 {
            BigUint::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }
}

impl From<u32> for BigUint {
    fn from(v: u32) -> Self {
        BigUint::from(v as u64)
    }
}

impl From<u128> for BigUint {
    fn from(v: u128) -> Self {
        BigUint::from_limbs_le(vec![v as u64, (v >> 64) as u64])
    }
}

impl BigUint {
    /// Converts to `u64` if the value fits.
    ///
    /// ```
    /// # use moma_bignum::BigUint;
    /// assert_eq!(BigUint::from(42u64).to_u64(), Some(42));
    /// assert_eq!(BigUint::from(1u128 << 90).to_u64(), None);
    /// ```
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Converts to `u128` if the value fits.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some(self.limbs[0] as u128 | (self.limbs[1] as u128) << 64),
            _ => None,
        }
    }

    /// Parses a hexadecimal string (no `0x` prefix, case-insensitive).
    ///
    /// # Errors
    ///
    /// Returns [`ParseBigUintError`] if the string is empty or contains a character
    /// that is not a hexadecimal digit.
    pub fn from_hex(s: &str) -> Result<Self, ParseBigUintError> {
        if s.is_empty() {
            return Err(ParseBigUintError {
                kind: ParseErrorKind::Empty,
            });
        }
        let mut limbs: Vec<u64> = Vec::with_capacity(s.len() / 16 + 1);
        let bytes = s.as_bytes();
        // Walk from the least significant end in chunks of 16 hex digits.
        let mut end = bytes.len();
        while end > 0 {
            let start = end.saturating_sub(16);
            let chunk = &s[start..end];
            let mut limb: u64 = 0;
            for c in chunk.chars() {
                let d = c.to_digit(16).ok_or(ParseBigUintError {
                    kind: ParseErrorKind::InvalidDigit(c),
                })?;
                limb = limb << 4 | d as u64;
            }
            limbs.push(limb);
            end = start;
        }
        Ok(BigUint::from_limbs_le(limbs))
    }

    /// Parses a decimal string.
    ///
    /// # Errors
    ///
    /// Returns [`ParseBigUintError`] if the string is empty or contains a character
    /// that is not a decimal digit.
    pub fn from_decimal(s: &str) -> Result<Self, ParseBigUintError> {
        if s.is_empty() {
            return Err(ParseBigUintError {
                kind: ParseErrorKind::Empty,
            });
        }
        let mut acc = BigUint::zero();
        let ten = BigUint::from(10u64);
        for c in s.chars() {
            let d = c.to_digit(10).ok_or(ParseBigUintError {
                kind: ParseErrorKind::InvalidDigit(c),
            })?;
            acc = &(&acc * &ten) + &BigUint::from(d as u64);
        }
        Ok(acc)
    }
}

impl FromStr for BigUint {
    type Err = ParseBigUintError;

    /// Parses a decimal string, or a hexadecimal string with a `0x` prefix.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
            BigUint::from_hex(hex)
        } else {
            BigUint::from_decimal(s)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_primitives_round_trip() {
        assert_eq!(BigUint::from(0u64).to_u64(), Some(0));
        assert_eq!(BigUint::from(u64::MAX).to_u64(), Some(u64::MAX));
        assert_eq!(BigUint::from(u128::MAX).to_u128(), Some(u128::MAX));
        assert_eq!(BigUint::from(u128::MAX).to_u64(), None);
    }

    #[test]
    fn hex_parsing() {
        let x = BigUint::from_hex("ff").unwrap();
        assert_eq!(x.to_u64(), Some(255));
        let y = BigUint::from_hex("1_".replace('_', "").as_str()).unwrap();
        assert_eq!(y.to_u64(), Some(1));
        let z = BigUint::from_hex("123456789abcdef0123456789abcdef0ff").unwrap();
        assert_eq!(z.bits(), 133);
        assert_eq!(format!("{z:x}"), "123456789abcdef0123456789abcdef0ff");
    }

    #[test]
    fn hex_errors() {
        assert!(BigUint::from_hex("").is_err());
        assert!(BigUint::from_hex("xyz").is_err());
        let err = BigUint::from_hex("12g").unwrap_err();
        assert!(err.to_string().contains("invalid digit"));
    }

    #[test]
    fn decimal_parsing() {
        let x = BigUint::from_decimal("340282366920938463463374607431768211456").unwrap();
        assert_eq!(x, BigUint::from(1u64) << 128);
        assert!("".parse::<BigUint>().is_err());
        assert_eq!("0x10".parse::<BigUint>().unwrap().to_u64(), Some(16));
        assert_eq!("10".parse::<BigUint>().unwrap().to_u64(), Some(10));
    }
}
