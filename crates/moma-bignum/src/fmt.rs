//! `Display`, `Debug`, and radix formatting for [`BigUint`].

use crate::BigUint;
use std::fmt;

impl fmt::Display for BigUint {
    /// Formats as a decimal number.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.pad_integral(true, "", "0");
        }
        // Peel off 19 decimal digits at a time (10^19 is the largest power of ten in u64).
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let mut chunks: Vec<u64> = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.div_rem_u64(CHUNK);
            chunks.push(r);
            cur = q;
        }
        let mut s = chunks.last().unwrap().to_string();
        for c in chunks.iter().rev().skip(1) {
            s.push_str(&format!("{c:019}"));
        }
        f.pad_integral(true, "", &s)
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint(0x{self:x})")
    }
}

impl fmt::LowerHex for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.pad_integral(true, "0x", "0");
        }
        let mut s = format!("{:x}", self.limbs.last().unwrap());
        for l in self.limbs.iter().rev().skip(1) {
            s.push_str(&format!("{l:016x}"));
        }
        f.pad_integral(true, "0x", &s)
    }
}

impl fmt::UpperHex for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let lower = format!("{self:x}");
        f.pad_integral(true, "0x", &lower.to_uppercase())
    }
}

impl fmt::Binary for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.pad_integral(true, "0b", "0");
        }
        let mut s = format!("{:b}", self.limbs.last().unwrap());
        for l in self.limbs.iter().rev().skip(1) {
            s.push_str(&format!("{l:064b}"));
        }
        f.pad_integral(true, "0b", &s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_known_values() {
        assert_eq!(BigUint::zero().to_string(), "0");
        assert_eq!(BigUint::from(u64::MAX).to_string(), "18446744073709551615");
        let x = BigUint::from(1u64) << 128;
        assert_eq!(x.to_string(), "340282366920938463463374607431768211456");
    }

    #[test]
    fn hex_and_binary_formatting() {
        let x = BigUint::from(0xdeadbeefu64);
        assert_eq!(format!("{x:x}"), "deadbeef");
        assert_eq!(format!("{x:X}"), "DEADBEEF");
        assert_eq!(format!("{x:#x}"), "0xdeadbeef");
        assert_eq!(format!("{:b}", BigUint::from(10u64)), "1010");
        assert_eq!(format!("{:x}", BigUint::zero()), "0");
    }

    #[test]
    fn hex_round_trip_multi_limb() {
        let s = "1000000000000000200000000000000030000000000000004";
        let x = BigUint::from_hex(s).unwrap();
        assert_eq!(format!("{x:x}"), s);
    }

    #[test]
    fn debug_is_never_empty() {
        assert_eq!(format!("{:?}", BigUint::zero()), "BigUint(0x0)");
    }

    #[test]
    fn display_round_trips_with_parser() {
        let x = BigUint::from_hex("abcdef0123456789abcdef0123456789abcdef").unwrap();
        let s = x.to_string();
        assert_eq!(BigUint::from_decimal(&s).unwrap(), x);
    }
}
