//! Multiplication: schoolbook (Equation 8) and Karatsuba (Equation 9).

use crate::BigUint;
use std::ops::Mul;

/// Number of limbs below which schoolbook multiplication is used even when Karatsuba is
/// requested. Chosen empirically; for the paper's bit-widths (2–16 limbs) this means the
/// top-level split is Karatsuba while the leaves are schoolbook, matching the way the
/// rewrite system composes rule (28) with the Karatsuba rule.
pub const KARATSUBA_THRESHOLD: usize = 8;

impl BigUint {
    /// Schoolbook `O(n^2)` multiplication (paper Equation 8 generalized to `n` digits).
    ///
    /// ```
    /// # use moma_bignum::BigUint;
    /// let a = BigUint::from(u64::MAX);
    /// assert_eq!(a.mul_schoolbook(&a), (&a * &a));
    /// ```
    pub fn mul_schoolbook(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u64;
            for (j, &b) in other.limbs.iter().enumerate() {
                let t = a as u128 * b as u128 + out[i + j] as u128 + carry as u128;
                out[i + j] = t as u64;
                carry = (t >> 64) as u64;
            }
            out[i + other.limbs.len()] = carry;
        }
        BigUint::from_limbs_le(out)
    }

    /// Karatsuba divide-and-conquer multiplication (paper Equation 9), falling back to
    /// schoolbook below `KARATSUBA_THRESHOLD` limbs.
    ///
    /// ```
    /// # use moma_bignum::BigUint;
    /// let a = BigUint::from(1u64) << 700;
    /// let b = (BigUint::from(1u64) << 650) - BigUint::one();
    /// assert_eq!(a.mul_karatsuba(&b), a.mul_schoolbook(&b));
    /// ```
    pub fn mul_karatsuba(&self, other: &BigUint) -> BigUint {
        let n = self.limbs.len().max(other.limbs.len());
        if self.limbs.len().min(other.limbs.len()) < KARATSUBA_THRESHOLD {
            return self.mul_schoolbook(other);
        }
        // Split both operands at `half` limbs: x = x1 * 2^(64*half) + x0.
        let half = n / 2;
        let (a0, a1) = self.split_at_limb(half);
        let (b0, b1) = other.split_at_limb(half);
        let z0 = a0.mul_karatsuba(&b0);
        let z2 = a1.mul_karatsuba(&b1);
        let sa = &a0 + &a1;
        let sb = &b0 + &b1;
        let z1 = sa.mul_karatsuba(&sb) - &z0 - &z2;
        z2.shl_limbs(2 * half) + z1.shl_limbs(half) + z0
    }

    /// Splits into `(low, high)` at limb index `at` (so `self = high << (64*at) | low`).
    fn split_at_limb(&self, at: usize) -> (BigUint, BigUint) {
        if at >= self.limbs.len() {
            return (self.clone(), BigUint::zero());
        }
        let low = BigUint::from_limbs_le(self.limbs[..at].to_vec());
        let high = BigUint::from_limbs_le(self.limbs[at..].to_vec());
        (low, high)
    }

    /// Shifts left by whole limbs (multiplication by `2^(64*limbs)`).
    pub(crate) fn shl_limbs(&self, limbs: usize) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u64; limbs];
        out.extend_from_slice(&self.limbs);
        BigUint::from_limbs_le(out)
    }

    /// Multiplies by a single 64-bit word.
    pub fn mul_u64(&self, word: u64) -> BigUint {
        if word == 0 || self.is_zero() {
            return BigUint::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u64;
        for &l in &self.limbs {
            let t = l as u128 * word as u128 + carry as u128;
            out.push(t as u64);
            carry = (t >> 64) as u64;
        }
        out.push(carry);
        BigUint::from_limbs_le(out)
    }

    fn mul_impl(&self, other: &BigUint) -> BigUint {
        // Dispatch on size: Karatsuba pays off only for larger operands.
        if self.limbs.len().min(other.limbs.len()) >= KARATSUBA_THRESHOLD {
            self.mul_karatsuba(other)
        } else {
            self.mul_schoolbook(other)
        }
    }
}

impl Mul<&BigUint> for &BigUint {
    type Output = BigUint;
    fn mul(self, rhs: &BigUint) -> BigUint {
        self.mul_impl(rhs)
    }
}

impl Mul<BigUint> for BigUint {
    type Output = BigUint;
    fn mul(self, rhs: BigUint) -> BigUint {
        self.mul_impl(&rhs)
    }
}

impl Mul<&BigUint> for BigUint {
    type Output = BigUint;
    fn mul(self, rhs: &BigUint) -> BigUint {
        self.mul_impl(rhs)
    }
}

impl Mul<BigUint> for &BigUint {
    type Output = BigUint;
    fn mul(self, rhs: BigUint) -> BigUint {
        self.mul_impl(&rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(s: &str) -> BigUint {
        BigUint::from_hex(s).unwrap()
    }

    #[test]
    fn small_products_match_u128() {
        for (a, b) in [(0u64, 5u64), (3, 7), (u64::MAX, u64::MAX), (u64::MAX, 2)] {
            let p = BigUint::from(a).mul_schoolbook(&BigUint::from(b));
            assert_eq!(p.to_u128(), Some(a as u128 * b as u128));
        }
    }

    #[test]
    fn karatsuba_matches_schoolbook_mixed_sizes() {
        // Deterministic pseudo-random operands via a simple LCG.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        for limbs_a in [1usize, 2, 7, 8, 9, 16, 17, 31] {
            for limbs_b in [1usize, 8, 16, 24] {
                let a = BigUint::from_limbs_le((0..limbs_a).map(|_| next()).collect());
                let b = BigUint::from_limbs_le((0..limbs_b).map(|_| next()).collect());
                assert_eq!(
                    a.mul_karatsuba(&b),
                    a.mul_schoolbook(&b),
                    "limbs {limbs_a}x{limbs_b}"
                );
            }
        }
    }

    #[test]
    fn multiplication_identities() {
        let a = big("deadbeefdeadbeefdeadbeefdeadbeefdeadbeef");
        assert_eq!(&a * &BigUint::zero(), BigUint::zero());
        assert_eq!(&a * &BigUint::one(), a);
        assert_eq!(&a * &BigUint::from(2u64), &a + &a);
        assert_eq!(a.mul_u64(0), BigUint::zero());
        assert_eq!(a.mul_u64(3), &a + &(&a + &a));
    }

    #[test]
    fn known_product() {
        // (2^128 - 1)^2 = 2^256 - 2^129 + 1
        let a = big("ffffffffffffffffffffffffffffffff");
        let expected = (BigUint::from(1u64) << 256) - (BigUint::from(1u64) << 129) + BigUint::one();
        assert_eq!(&a * &a, expected);
    }

    #[test]
    fn distributivity_smoke() {
        let a = big("123456789abcdef0123456789abcdef0");
        let b = big("fedcba9876543210fedcba9876543210");
        let c = big("0f0f0f0f0f0f0f0f");
        assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }
}
