//! Property-based tests: ring axioms and consistency against `u128` arithmetic.

use moma_bignum::BigUint;
use proptest::prelude::*;

/// Strategy: a `BigUint` with up to `max_limbs` random limbs.
fn biguint(max_limbs: usize) -> impl Strategy<Value = BigUint> {
    prop::collection::vec(any::<u64>(), 0..=max_limbs).prop_map(BigUint::from_limbs_le)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn add_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let sum = BigUint::from(a) + BigUint::from(b);
        prop_assert_eq!(sum.to_u128(), Some(a as u128 + b as u128));
    }

    #[test]
    fn mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let prod = BigUint::from(a) * BigUint::from(b);
        prop_assert_eq!(prod.to_u128(), Some(a as u128 * b as u128));
    }

    #[test]
    fn div_rem_matches_u128(a in any::<u128>(), b in 1u128..) {
        let (q, r) = BigUint::from(a).div_rem(&BigUint::from(b));
        prop_assert_eq!(q.to_u128(), Some(a / b));
        prop_assert_eq!(r.to_u128(), Some(a % b));
    }

    #[test]
    fn addition_is_commutative_and_associative(a in biguint(20), b in biguint(20), c in biguint(20)) {
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
    }

    #[test]
    fn multiplication_is_commutative_and_associative(a in biguint(8), b in biguint(8), c in biguint(8)) {
        prop_assert_eq!(&a * &b, &b * &a);
        prop_assert_eq!(&(&a * &b) * &c, &a * &(&b * &c));
    }

    #[test]
    fn distributivity(a in biguint(10), b in biguint(10), c in biguint(10)) {
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn karatsuba_equals_schoolbook(a in biguint(24), b in biguint(24)) {
        prop_assert_eq!(a.mul_karatsuba(&b), a.mul_schoolbook(&b));
    }

    #[test]
    fn add_then_sub_round_trips(a in biguint(20), b in biguint(20)) {
        prop_assert_eq!(&(&a + &b) - &b, a.clone());
        prop_assert_eq!((&a + &b).checked_sub(&a), Some(b));
    }

    #[test]
    fn division_reconstructs(a in biguint(20), b in biguint(10)) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(&b);
        prop_assert!(r < b);
        prop_assert_eq!(&(&q * &b) + &r, a);
    }

    #[test]
    fn shift_is_multiplication_by_power_of_two(a in biguint(10), bits in 0u32..260) {
        prop_assert_eq!(a.shl_bits(bits), &a * &(BigUint::from(1u64) << bits));
        prop_assert_eq!(a.shl_bits(bits).shr_bits(bits), a);
    }

    #[test]
    fn hex_and_decimal_round_trip(a in biguint(12)) {
        prop_assert_eq!(BigUint::from_hex(&format!("{a:x}")).unwrap(), a.clone());
        prop_assert_eq!(BigUint::from_decimal(&a.to_string()).unwrap(), a);
    }

    #[test]
    fn modular_ops_stay_reduced(a in biguint(6), b in biguint(6), q in biguint(6)) {
        prop_assume!(q > BigUint::one());
        let ar = &a % &q;
        let br = &b % &q;
        let sum = ar.mod_add(&br, &q);
        let diff = ar.mod_sub(&br, &q);
        let prod = ar.mod_mul(&br, &q);
        prop_assert!(sum < q);
        prop_assert!(diff < q);
        prop_assert!(prod < q);
        prop_assert_eq!(sum, (&ar + &br) % &q);
        prop_assert_eq!(prod, (&ar * &br) % &q);
        // diff + b ≡ a (mod q)
        prop_assert_eq!(diff.mod_add(&br, &q), ar);
    }

    #[test]
    fn mod_pow_matches_iterated_multiplication(a in biguint(3), e in 0u32..64, q in biguint(3)) {
        prop_assume!(q > BigUint::one());
        let ar = &a % &q;
        let mut expected = BigUint::one() % &q;
        for _ in 0..e {
            expected = expected.mod_mul(&ar, &q);
        }
        prop_assert_eq!(ar.mod_pow(&BigUint::from(e as u64), &q), expected);
    }

    #[test]
    fn low_bits_is_mod_power_of_two(a in biguint(8), bits in 0u32..300) {
        prop_assert_eq!(a.low_bits(bits), &a % &(BigUint::from(1u64) << bits));
    }
}
