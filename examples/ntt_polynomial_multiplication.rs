//! Polynomial multiplication with a 256-bit-coefficient NTT — the FHE/ZKP workload the
//! paper's introduction motivates (§2.3): multiplying two degree-n polynomials over
//! `Z_q` in `O(n log n)` instead of `O(n^2)`.
//!
//! Run with: `cargo run -p moma-examples --example ntt_polynomial_multiplication`

use moma::mp::{MulAlgorithm, U256};
use moma::ntt::params::NttParams;
use moma::ntt::polymul::ntt_polymul;
use moma::ntt::reference::schoolbook_polymul;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    const BITS: u32 = 256;
    const DEGREE: usize = 512;

    let params = NttParams::<4>::for_paper_modulus(2, BITS, MulAlgorithm::Schoolbook);
    let ring = &params.ring;
    let mut rng = StdRng::seed_from_u64(2025);

    // Two random degree-(DEGREE-1) polynomials with 252-bit coefficients.
    let a: Vec<U256> = (0..DEGREE).map(|_| ring.random_element(&mut rng)).collect();
    let b: Vec<U256> = (0..DEGREE).map(|_| ring.random_element(&mut rng)).collect();

    let t0 = Instant::now();
    let fast = ntt_polymul(BITS, MulAlgorithm::Schoolbook, &a, &b);
    let t_ntt = t0.elapsed();

    let t0 = Instant::now();
    let slow = schoolbook_polymul(&params, &a, &b);
    let t_schoolbook = t0.elapsed();

    assert_eq!(
        fast, slow,
        "NTT-based product must equal the schoolbook product"
    );
    println!("polynomial degree:            {}", DEGREE - 1);
    println!(
        "coefficient modulus:          {}-bit ({}-bit kernel)",
        BITS - 4,
        BITS
    );
    println!("NTT-based multiplication:     {t_ntt:?}");
    println!("schoolbook multiplication:    {t_schoolbook:?}");
    println!(
        "speedup:                      {:.1}x",
        t_schoolbook.as_secs_f64() / t_ntt.as_secs_f64()
    );
    println!("results agree on all {} coefficients.", fast.len());
}
