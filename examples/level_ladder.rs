//! End-to-end FHE level-ladder scenario over the negacyclic ring layer.
//!
//! Run with: `cargo run -p moma-examples --example level_ladder`
//!
//! The workload every RNS-CKKS-shaped FHE scheme runs per multiplicative
//! level: negacyclic multiply in `R_q = Z_q[X]/(X^n + 1)` (folded-twist NTT →
//! pointwise → inverse NTT), then rescale-and-drop one modulus from the
//! ladder. This example walks that ladder three ways:
//!
//! 1. **Inline** — `Session::ring` hands out a shared [`moma::RingSpace`];
//!    the full ladder (first step `a · b`, every later step squares the
//!    running value) is crosschecked bit for bit against the schoolbook
//!    `BigUint` oracle [`moma::ring::oracle::ladder_replay`].
//! 2. **Warm steady state** — the second ladder run reuses every plan and
//!    recycles every plane through the session pool: zero allocations.
//! 3. **Served** — the same traffic through `moma-serve`: a ring tenant pins
//!    the ladder once, and concurrent `LadderStep` requests for one
//!    `(tenant, level)` coalesce into a single batch over the shared context.

use moma::bignum::BigUint;
use moma::Session;
use moma_serve::{Response, ServeConfig, Server, WorkItem};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

/// Runs the full ladder to the floor level, returning the end state plus the
/// launch/allocation totals — the same shape the oracle replays.
fn run_ladder(
    space: &moma::RingSpace,
    a: &moma::RingVec,
    b: &moma::RingVec,
) -> (moma::RingVec, usize, usize) {
    let (mut cur, first) = space.ladder_step(a, b);
    let (mut launches, mut allocs) = (first.launches, first.allocs);
    for _ in 1..space.steps() {
        let (next, stats) = space.ladder_step(&cur, &cur);
        launches += stats.launches;
        allocs += stats.allocs;
        cur = next;
    }
    (cur, launches, allocs)
}

fn main() {
    // Small enough that the O(n²) schoolbook oracle replays in well under a
    // second; the committed bench row runs the same ladder at n = 4096.
    let n = 256;
    let levels = 6;
    let session = Session::default();
    let moduli = moma::ring::default_ladder(n, levels);
    let space = session.ring(n, &moduli);
    println!(
        "ring R_q = Z_q[X]/(X^{n} + 1), ladder of {} moduli ({} levels)",
        moduli.len(),
        space.steps()
    );

    let mut rng = StdRng::seed_from_u64(7);
    let coeffs = |rng: &mut StdRng| -> Vec<BigUint> {
        (0..n)
            .map(|_| moma::bignum::random::random_below(rng, space.product(0)))
            .collect()
    };
    let (a_coeffs, b_coeffs) = (coeffs(&mut rng), coeffs(&mut rng));
    let a = space.encode(0, &a_coeffs);
    let b = space.encode(0, &b_coeffs);

    // 1. Inline ladder, crosschecked bit for bit against the BigUint oracle.
    let (floor, launches, _) = run_ladder(&space, &a, &b);
    let expect = moma::ring::oracle::ladder_replay(&moduli, &a_coeffs, &b_coeffs, levels);
    assert_eq!(
        space.decode(&floor),
        expect,
        "engine ladder diverged from the oracle"
    );
    // Recycle the floor-level planes so the warm re-run finds every buffer
    // back in the pool.
    drop(floor);
    println!(
        "ladder of {levels} levels: {launches} launches ({:.1}/level), \
         end state matches the schoolbook oracle bit for bit",
        launches as f64 / levels as f64
    );

    // 2. Steady state: the first run stocked the pool, so a warm ladder
    // recycles every plane — zero heap allocations.
    let (_, _, warm_allocs) = run_ladder(&space, &a, &b);
    assert_eq!(
        warm_allocs, 0,
        "warm ladder must run out of the session pool"
    );
    println!("warm re-run: {warm_allocs} plane allocations (every buffer recycled)");

    // 3. The same step as served traffic: a ring tenant pins the ladder, and
    // concurrent level-0 requests coalesce into one batch.
    let server = Server::new(
        session.clone(),
        ServeConfig {
            workers: 1,
            max_batch: 8,
            min_batch: 4,
            batch_window: Duration::from_millis(10),
            ..ServeConfig::default()
        },
    );
    let tenant = server.register_ring_tenant(n, &moduli);
    let step_expect = moma::ring::oracle::ladder_replay(&moduli, &a_coeffs, &b_coeffs, 1);
    std::thread::scope(|s| {
        for _ in 0..4 {
            let client = server.client();
            let (a_coeffs, b_coeffs, step_expect) = (&a_coeffs, &b_coeffs, &step_expect);
            s.spawn(move || {
                let done = client
                    .call(WorkItem::LadderStep {
                        tenant,
                        level: 0,
                        a: a_coeffs.clone(),
                        b: b_coeffs.clone(),
                    })
                    .expect("ladder step");
                let Response::Ladder(out) = done.response else {
                    unreachable!()
                };
                assert_eq!(&out, step_expect, "served step diverged from the oracle");
                println!(
                    "served level-0 step rode a batch of {} ({} launches for the batch)",
                    done.batch_size, done.batch_launches
                );
            });
        }
    });
    let stats = server.stats();
    println!(
        "server: {} requests in {} batches ({} coalesced) over one shared ring context",
        stats.completed, stats.batches, stats.coalesced_requests
    );
}
