//! Warm start: snapshot a session's precomputed plan caches to bytes, restore
//! them into a fresh session, and serve with zero plan builds *and* zero heap
//! plane allocations — the precompute-once-execute-many contract surviving a
//! process restart.
//!
//! Run with: `cargo run -p moma-examples --example warm_start`

use std::time::Instant;

use moma::bignum::BigUint;
use moma::Session;

fn main() {
    // 1. A "first boot": the session builds every plan the workload needs —
    //    an NTT plan (twiddle tables), a deterministic RNS basis (prime
    //    search), and the conversion/rescale/fused-chain plans between bases.
    let boot = Instant::now();
    let warm = Session::default();
    let ntt = warm.ntt_default(1024);
    let src = warm.rns_with_capacity(256);
    let src_moduli = src.moduli();
    let dst = warm.rns(&src_moduli[..4]);
    let values: Vec<BigUint> = (1..=8u64).map(|v| BigUint::from(v * 0x1234_5678)).collect();
    let reference = src
        .encode(&values)
        .mul(&src.encode(&values))
        .rescale_then_extend(&dst);
    let cold_build = boot.elapsed();
    println!(
        "cold boot: built {} NTT + {} RNS + {} fused-chain plans in {cold_build:?}",
        warm.stats().ntt.misses,
        warm.stats().rns.misses,
        warm.stats().rescale_extend.misses,
    );

    // 2. Snapshot: every plan cache serialized to a self-describing, versioned,
    //    checksummed byte format. In production this goes to a file next to
    //    the service binary.
    let bytes = warm.snapshot();
    println!("snapshot: {} bytes", bytes.len());

    // 3. "Next boot": a fresh session restores the caches instead of building
    //    them. Every table is validated arithmetically before anything is
    //    seeded — a corrupt or mismatched snapshot is rejected whole, and the
    //    session falls back to cold builds.
    let boot = Instant::now();
    let fresh = Session::default();
    let report = fresh.restore(&bytes).expect("snapshot restores");
    let restored = boot.elapsed();
    println!(
        "warm boot: restored {} plans in {restored:?} ({:.0}x faster)",
        report.ntt_plans
            + report.rns_plans
            + report.baseconv_plans
            + report.rescale_plans
            + report.rescale_extend_plans,
        cold_build.as_secs_f64() / restored.as_secs_f64().max(1e-9),
    );

    // 4. The restored session serves the same workload with zero plan builds,
    //    bit-for-bit identical to the first boot...
    let src = fresh.rns_with_capacity(256);
    let dst = fresh.rns(&src.moduli()[..4]);
    let replay = src
        .encode(&values)
        .mul(&src.encode(&values))
        .rescale_then_extend(&dst);
    assert_eq!(replay.matrix(), reference.matrix());
    let mut data: Vec<u64> = (0..1024).map(|i| i as u64 % ntt.modulus()).collect();
    let _ = fresh.ntt_default(1024).forward_batch(&mut data);
    assert_eq!(fresh.stats().ntt.misses, 0, "no NTT plan was rebuilt");
    assert_eq!(fresh.stats().rns.misses, 0, "no RNS plan was rebuilt");
    println!("replay: all plan-cache hits, outputs bit-identical to first boot");

    // 5. ...and, once the buffer pool is warm, without heap allocations: every
    //    plane an op needs comes from the session pool and goes back on drop.
    let before = fresh.stats().pool;
    for _ in 0..100 {
        let v = src.encode(&values);
        let (_, stats) = v.mul_with_stats(&v);
        assert_eq!(stats.allocs, 0, "steady state never heap-allocates a plane");
    }
    let after = fresh.stats().pool;
    println!(
        "steady state: 100 requests, {} pool hits, {} pool misses, 0 heap planes",
        after.hits - before.hits,
        after.misses - before.misses,
    );

    // 6. Fail closed: a tampered snapshot is rejected with a typed error and
    //    seeds nothing.
    let mut tampered = bytes.clone();
    let mid = tampered.len() / 2;
    tampered[mid] ^= 1;
    let err = Session::default().restore(&tampered).unwrap_err();
    println!("tampered snapshot rejected: {err}");
}
