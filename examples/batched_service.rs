//! Batched service example: one shared `Session` behind a `moma-serve` server,
//! hit by concurrent clients whose requests coalesce into stage-batched
//! launches.
//!
//! Run with: `cargo run -p moma-examples --example batched_service`
//!
//! Demonstrates the PR-6 ownership model end to end: `Session` is a cheap
//! `Clone` handle over shared caches, the handles it yields are owned and
//! `Send + 'static`, and the server's coalescing batcher turns many concurrent
//! single-transform requests into one `log2(n) + 1`-launch batch.

use moma::bignum::BigUint;
use moma::Session;
use moma_serve::{Response, ServeConfig, Server, WorkItem};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

fn main() {
    let session = Session::default();
    let server = Server::new(
        session.clone(),
        ServeConfig {
            workers: 2,
            max_batch: 32,
            min_batch: 4,
            batch_window: Duration::from_millis(5),
        },
    );

    // A tenant pins an RNS basis pair once; every chain request reuses it.
    let src_moduli = session.rns_with_capacity(128).moduli();
    let tenant = server.register_tenant(&src_moduli, &src_moduli[..4]);
    let product = session.rns(&src_moduli).product().clone();

    let n = 1024;
    let space = session.ntt_default(n);
    let q = space.modulus();

    // Eight closed-loop clients: each thread owns a Client clone and keeps one
    // request in flight. Concurrent NTT requests for the same (q, n) coalesce.
    let per_client = 16;
    std::thread::scope(|s| {
        for c in 0..8u64 {
            let client = server.client();
            let product = &product;
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(c);
                for i in 0..per_client {
                    let done = if i % 4 == 3 {
                        let operand = |rng: &mut StdRng| -> Vec<BigUint> {
                            (0..4)
                                .map(|_| moma::bignum::random::random_below(rng, product))
                                .collect()
                        };
                        client
                            .call(WorkItem::RnsMulRescaleExtend {
                                tenant,
                                a: operand(&mut rng),
                                b: operand(&mut rng),
                            })
                            .expect("rns chain")
                    } else {
                        client
                            .call(WorkItem::NttForward {
                                q,
                                n,
                                data: (0..n).map(|_| rng.gen_range(0..q)).collect(),
                            })
                            .expect("ntt transform")
                    };
                    if i == per_client - 1 {
                        let kind = match done.response {
                            Response::Ntt(_) => "ntt",
                            Response::Rns(_) => "rns chain",
                        };
                        println!(
                            "client {c}: last request ({kind}) rode a batch of {} \
                             ({} launches for the whole batch)",
                            done.batch_size, done.batch_launches
                        );
                    }
                }
            });
        }
    });

    let stats = server.stats();
    println!(
        "\nserved {} requests in {} batches (largest {}, {} coalesced) — {} total launches",
        stats.completed,
        stats.batches,
        stats.largest_batch,
        stats.coalesced_requests,
        stats.launches
    );
    let ntt = session.stats().ntt;
    println!(
        "NTT plan cache: {} misses, {} hits ({} contended waits) — one build served everyone",
        ntt.misses, ntt.hits, ntt.contended
    );
}
