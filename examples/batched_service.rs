//! Batched service example: one shared `Session` behind a `moma-serve` server,
//! hit by concurrent clients whose requests coalesce into stage-batched
//! launches.
//!
//! Run with: `cargo run -p moma-examples --example batched_service`
//!
//! Demonstrates the PR-6 ownership model end to end: `Session` is a cheap
//! `Clone` handle over shared caches, the handles it yields are owned and
//! `Send + 'static`, and the server's coalescing batcher turns many concurrent
//! single-transform requests into one `log2(n) + 1`-launch batch.
//!
//! Part two demonstrates the degraded-mode contract on a deliberately tiny
//! server: a per-request deadline missed while the worker is wedged, a
//! bounded queue shedding a flood at admission, and `call_with_retry` riding
//! out the overload with jittered exponential backoff.

use moma::bignum::BigUint;
use moma::Session;
use moma_serve::{
    Fault, FaultPlan, Response, RetryPolicy, ServeConfig, ServeError, Server, WorkItem,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

fn main() {
    let session = Session::default();
    let server = Server::new(
        session.clone(),
        ServeConfig {
            workers: 2,
            max_batch: 32,
            min_batch: 4,
            batch_window: Duration::from_millis(5),
            ..ServeConfig::default()
        },
    );

    // A tenant pins an RNS basis pair once; every chain request reuses it.
    let src_moduli = session.rns_with_capacity(128).moduli();
    let tenant = server.register_tenant(&src_moduli, &src_moduli[..4]);
    let product = session.rns(&src_moduli).product().clone();

    let n = 1024;
    let space = session.ntt_default(n);
    let q = space.modulus();

    // Eight closed-loop clients: each thread owns a Client clone and keeps one
    // request in flight. Concurrent NTT requests for the same (q, n) coalesce.
    let per_client = 16;
    std::thread::scope(|s| {
        for c in 0..8u64 {
            let client = server.client();
            let product = &product;
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(c);
                for i in 0..per_client {
                    let done = if i % 4 == 3 {
                        let operand = |rng: &mut StdRng| -> Vec<BigUint> {
                            (0..4)
                                .map(|_| moma::bignum::random::random_below(rng, product))
                                .collect()
                        };
                        client
                            .call(WorkItem::RnsMulRescaleExtend {
                                tenant,
                                a: operand(&mut rng),
                                b: operand(&mut rng),
                            })
                            .expect("rns chain")
                    } else {
                        client
                            .call(WorkItem::NttForward {
                                q,
                                n,
                                data: (0..n).map(|_| rng.gen_range(0..q)).collect(),
                            })
                            .expect("ntt transform")
                    };
                    if i == per_client - 1 {
                        let kind = match done.response {
                            Response::Ntt(_) => "ntt",
                            Response::Rns(_) => "rns chain",
                            Response::Ladder(_) => "ladder step",
                        };
                        println!(
                            "client {c}: last request ({kind}) rode a batch of {} \
                             ({} launches for the whole batch)",
                            done.batch_size, done.batch_launches
                        );
                    }
                }
            });
        }
    });

    let stats = server.stats();
    println!(
        "\nserved {} requests in {} batches (largest {}, {} coalesced) — {} total launches",
        stats.completed,
        stats.batches,
        stats.largest_batch,
        stats.coalesced_requests,
        stats.launches
    );
    let ntt = session.stats().ntt;
    println!(
        "NTT plan cache: {} misses, {} hits ({} contended waits) — one build served everyone",
        ntt.misses, ntt.hits, ntt.contended
    );

    degraded_mode_demo(&session);
}

/// The degraded-mode contract on a deliberately tiny server: one worker, no
/// batching, a two-slot queue, and an injected 40 ms stall on the very first
/// request so the failure paths are reachable on demand.
fn degraded_mode_demo(session: &Session) {
    println!("\n-- degraded mode: deadlines, shedding, retry --");
    let server = Server::new(
        session.clone(),
        ServeConfig {
            workers: 1,
            max_batch: 1,
            min_batch: 1,
            batch_window: Duration::ZERO,
            queue_depth: 2,
            fault_plan: FaultPlan::new().with(0, Fault::Delay(Duration::from_millis(40))),
        },
    );
    let client = server.client();
    let n = 64;
    let q = session.ntt_default(n).modulus();
    let item = |seed: u64| WorkItem::NttForward {
        q,
        n,
        data: (0..n as u64).map(|j| (seed * 131 + j) % q).collect(),
    };

    // Request 0 wedges the only worker for 40 ms (the injected fault).
    let wedge = client.submit(item(0)).expect("first request is admitted");

    // A 5 ms deadline cannot survive a 40 ms wedge: the server expires the
    // request instead of wasting launches on an answer nobody is waiting for.
    let doomed = client
        .submit_with_deadline(item(1), Duration::from_millis(5))
        .expect("admitted before the queue fills");
    // A flood against the wedged worker fills the two-slot queue; the rest
    // fail fast at admission instead of queueing behind the stall.
    let flood: Vec<_> = (0..8).map(|i| client.submit(item(2 + i))).collect();
    let shed_now = flood
        .iter()
        .filter(|r| matches!(r, Err(ServeError::Overloaded)))
        .count();

    // A retrying caller rides out the overload: jittered exponential backoff
    // under an attempt budget, deterministic given the policy seed.
    let policy = RetryPolicy {
        attempts: 10,
        base_backoff: Duration::from_millis(5),
        ..RetryPolicy::default()
    };
    let retried = client
        .call_with_retry(item(99), &policy)
        .expect("retry outlasts the 40 ms wedge");

    assert!(matches!(doomed.wait(), Err(ServeError::DeadlineExceeded)));
    wedge.wait().expect("the wedged request still completes");
    for ticket in flood.into_iter().flatten() {
        ticket.wait().expect("accepted flood requests complete");
    }
    let stats = server.stats();
    println!(
        "deadline missed under a 40 ms injected stall -> DeadlineExceeded (expired {})",
        stats.expired
    );
    println!(
        "flood of 8 against a full two-slot queue -> {shed_now} rejected at admission (shed {})",
        stats.shed
    );
    println!(
        "call_with_retry rode out the overload and completed (batch of {})",
        retried.batch_size
    );
}
