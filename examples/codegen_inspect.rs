//! Inspect the rewrite system itself: print the Table 1 rules, the §4 worked example
//! (rewriting a double-word modular addition step by step), and the generated CUDA
//! source for the paper's Listing 2/4 equivalents.
//!
//! Run with: `cargo run -p moma-examples --example codegen_inspect`

use moma::rewrite::rules::{CORE_RULES, EXTENDED_RULES};
use moma::{Compiler, KernelOp, KernelSpec};

fn main() {
    println!("=== Table 1: MoMA core rewrite rules ===\n");
    for rule in CORE_RULES {
        println!("({})  {}", rule.number, rule.lhs);
        println!("     -> {}", rule.rhs);
        println!("     implemented in {}\n", rule.implemented_in);
    }
    println!("=== Additional rules described in prose ===\n");
    for rule in EXTENDED_RULES {
        println!("     {}", rule.lhs);
        println!("     -> {}\n", rule.rhs);
    }

    // The §4 worked example: c^(2w) = (a + b) mod q at 128 bits, rewritten to 64-bit
    // machine words (Equations 30 -> 34, then concretized).
    println!("=== Worked example: 128-bit modular addition (Equation 30) ===\n");
    let compiler = Compiler::default();
    let (kernel, trace) = compiler.compile_with_trace(&KernelSpec::new(KernelOp::ModAdd, 128));
    for (stage, text) in &trace {
        println!("--- {stage} ---");
        println!("{text}\n");
    }

    println!("=== Emitted CUDA (the paper's Listing 2 _daddmod equivalent) ===\n");
    println!("{}", kernel.cuda_source);

    println!("=== Emitted CUDA for 128-bit Barrett modular multiplication (Listing 4) ===\n");
    let mulmod = compiler.compile(&KernelSpec::new(KernelOp::ModMul, 128));
    println!("{}", mulmod.cuda_source);
}
