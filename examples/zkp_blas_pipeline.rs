//! A ZKP-style batched BLAS pipeline at a non-power-of-two width (381 bits, the
//! BLS12-381 field size), executed element-parallel on the simulated GPU, with the
//! per-device runtime estimates from the analytical cost model.
//!
//! Run with: `cargo run -p moma-examples --example zkp_blas_pipeline`

use moma::blas::batch::Batch;
use moma::blas::gpu::run_batch_parallel;
use moma::blas::BlasOp;
use moma::gpu::DeviceSpec;
use moma::mp::{ModRing, MpUint};
use moma::{KernelOp, KernelSpec, Session};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A 377-bit modulus in a 384-bit (6-limb) container — the BLS12-377/381 regime the
    // paper highlights for its non-power-of-two optimization.
    const BITS: u32 = 381;
    let q_big = moma::ntt::params::paper_modulus(384);
    let q = MpUint::<6>::from_limbs_le(&q_big.to_limbs_le(6));
    let ring = ModRing::new(q);
    let mut rng = StdRng::seed_from_u64(7);

    // Batched vectors, one virtual GPU thread per element.
    let x = Batch::random(&ring, &mut rng, 64, 256);
    let y = Batch::random(&ring, &mut rng, 64, 256);
    let a = ring.random_element(&mut rng);

    println!(
        "batch: {} vectors x {} elements, {}-bit modulus\n",
        x.batch_size(),
        x.vector_len,
        q_big.bits()
    );
    for op in BlasOp::all() {
        let (_, stats) = run_batch_parallel(&ring, op, a, &x, &y);
        println!(
            "{:<24} host wall-clock {:>8.1} ns/element ({} worker threads)",
            op.name(),
            stats.nanos_per_element(),
            stats.workers
        );
    }

    // The zero-pruning optimization: a 381-bit kernel is cheaper than the padded
    // 512-bit kernel it lives in. Both kernels come out of the session cache.
    let session = Session::default();
    let pruned = session.compile(&KernelSpec::new(KernelOp::ModMul, BITS));
    let full = session.compile(&KernelSpec::new(KernelOp::ModMul, 512));
    println!(
        "\nzero pruning: {}-bit modmul uses {} word ops vs {} for the full 512-bit kernel",
        BITS,
        pruned.op_counts.total(),
        full.op_counts.total()
    );

    // Modelled per-element times on the paper's three GPUs — the generated
    // kernel is compiled once (session cache) and re-priced per device.
    println!("\nmodelled vector-multiplication time per element (ns), 2^20 elements:");
    for device in DeviceSpec::all() {
        let ns = session.modelled_blas_ns_per_element(device, KernelOp::ModMul, 384, 1 << 20);
        println!("  {:<10} {ns:.3} ns", device.name);
    }
}
