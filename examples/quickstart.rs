//! Quickstart: open a `Session`, generate a 256-bit modular multiplication kernel
//! through its cache, look at the code the rewrite system produces, execute it, and
//! run a session-cached RNS chain.
//!
//! Run with: `cargo run -p moma-examples --example quickstart`

use moma::bignum::BigUint;
use moma::{KernelOp, KernelSpec, Session};

fn main() {
    // 1. One session owns every cache: generated kernels, compiled kernels, and
    //    the NTT/RNS execution plans. Everything below goes through it.
    let session = Session::default();

    // 2. Generate the kernel: (a * b) mod q for 256-bit operands, Barrett reduction,
    //    lowered to 64-bit machine words by the MoMA rewrite system.
    let kernel = session.compile(&KernelSpec::new(KernelOp::ModMul, 256));

    println!("Generated kernel: {}", kernel.kernel.name);
    println!(
        "  lowering stages (width -> statements): {:?}",
        kernel
            .lowered
            .stages
            .iter()
            .map(|s| (s.width, s.statements))
            .collect::<Vec<_>>()
    );
    println!("  word-level operations: {}", kernel.op_counts);
    println!();
    println!("--- CUDA-like source (first 20 lines) ---");
    for line in kernel.cuda_source.lines().take(20) {
        println!("{line}");
    }
    println!("... ({} lines total)\n", kernel.cuda_source.lines().count());

    // 3. Compile once, execute many: an identical request is served from the cache.
    let again = session.compile(&KernelSpec::new(KernelOp::ModMul, 256));
    assert!(std::sync::Arc::ptr_eq(&kernel, &again));
    println!(
        "generated-kernel cache: {} miss, {} hit (second request built nothing)\n",
        session.stats().generated.misses,
        session.stats().generated.hits
    );

    // 4. Execute the generated code on real values and check it against the
    //    arbitrary-precision oracle.
    let q = moma::ntt::params::paper_modulus(256);
    let mu = (BigUint::from(1u64) << (2 * q.bits() + 3)) / &q;
    let a = BigUint::from_hex("123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef")
        .unwrap()
        % &q;
    let b = BigUint::from_hex("fedcba9876543210fedcba9876543210fedcba9876543210fedcba987654321")
        .unwrap()
        % &q;

    let words = |x: &BigUint| {
        let mut w = x.to_limbs_le(4);
        w.reverse(); // the generated kernel takes words most-significant first
        w
    };
    let mut inputs = Vec::new();
    inputs.extend(words(&a));
    inputs.extend(words(&b));
    inputs.extend(words(&q));
    inputs.extend(words(&mu));
    let outputs = kernel.run(&inputs).expect("generated kernel runs");
    let got = outputs
        .iter()
        .fold(BigUint::zero(), |acc, &w| (acc << 64) + BigUint::from(w));

    let expected = a.mod_mul(&b, &q);
    println!("a * b mod q (generated code) = 0x{got:x}");
    println!("a * b mod q (oracle)         = 0x{expected:x}");
    assert_eq!(got, expected, "generated code must agree with the oracle");
    println!("The generated kernel agrees with the arbitrary-precision oracle.\n");

    // 5. The typed RNS handles: encode, square, and run the fused
    //    rescale-and-extend chain (BEHZ FastBConvSK), all through session caches.
    let space = session.rns_with_capacity(128);
    let values = [a % space.product(), b % space.product()];
    let vec = space.encode(&values);
    let extended = vec.mul(&vec).rescale_then_extend(&space);
    println!(
        "RNS chain over {} moduli: mul -> fused rescale_then_extend -> {} elements over {} target rows",
        space.moduli().len(),
        extended.len(),
        extended.matrix().row_count()
    );
    let stats = session.stats();
    println!(
        "plan caches after the chain: rns {}+{}, rescale_extend {}+{} (misses+hits)",
        stats.rns.misses, stats.rns.hits, stats.rescale_extend.misses, stats.rescale_extend.hits
    );
}
