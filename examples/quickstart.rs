//! Quickstart: generate a 256-bit modular multiplication kernel, look at the code the
//! rewrite system produces, and execute it.
//!
//! Run with: `cargo run -p moma-examples --example quickstart`

use moma::bignum::BigUint;
use moma::{Compiler, KernelOp, KernelSpec};

fn main() {
    // 1. Generate the kernel: (a * b) mod q for 256-bit operands, Barrett reduction,
    //    lowered to 64-bit machine words by the MoMA rewrite system.
    let compiler = Compiler::default();
    let kernel = compiler.compile(&KernelSpec::new(KernelOp::ModMul, 256));

    println!("Generated kernel: {}", kernel.kernel.name);
    println!(
        "  lowering stages (width -> statements): {:?}",
        kernel
            .lowered
            .stages
            .iter()
            .map(|s| (s.width, s.statements))
            .collect::<Vec<_>>()
    );
    println!("  word-level operations: {}", kernel.op_counts);
    println!();
    println!("--- CUDA-like source (first 20 lines) ---");
    for line in kernel.cuda_source.lines().take(20) {
        println!("{line}");
    }
    println!("... ({} lines total)\n", kernel.cuda_source.lines().count());

    // 2. Execute the generated code on real values and check it against the
    //    arbitrary-precision oracle.
    let q = moma::ntt::params::paper_modulus(256);
    let mu = (BigUint::from(1u64) << (2 * q.bits() + 3)) / &q;
    let a = BigUint::from_hex("123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef")
        .unwrap()
        % &q;
    let b = BigUint::from_hex("fedcba9876543210fedcba9876543210fedcba9876543210fedcba987654321")
        .unwrap()
        % &q;

    let words = |x: &BigUint| {
        let mut w = x.to_limbs_le(4);
        w.reverse(); // the generated kernel takes words most-significant first
        w
    };
    let mut inputs = Vec::new();
    inputs.extend(words(&a));
    inputs.extend(words(&b));
    inputs.extend(words(&q));
    inputs.extend(words(&mu));
    let outputs = kernel.run(&inputs).expect("generated kernel runs");
    let got = outputs
        .iter()
        .fold(BigUint::zero(), |acc, &w| (acc << 64) + BigUint::from(w));

    let expected = a.mod_mul(&b, &q);
    println!("a * b mod q (generated code) = 0x{got:x}");
    println!("a * b mod q (oracle)         = 0x{expected:x}");
    assert_eq!(got, expected, "generated code must agree with the oracle");
    println!("\nThe generated kernel agrees with the arbitrary-precision oracle.");
}
