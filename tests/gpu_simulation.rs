//! Integration test: the simulated GPU — generated kernels executed one virtual thread
//! per element, and the analytical cost model's qualitative properties.

use moma::gpu::launch::launch_kernel;
use moma::gpu::{CostModel, DeviceSpec};
use moma::mp::{ModRing, MpUint};
use moma::ntt::params::paper_modulus;
use moma::{Compiler, KernelOp, KernelSpec, MulAlgorithm, Session};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn generated_vecaddmod_on_simulated_gpu_matches_runtime_library() {
    // Generate the 128-bit modular-addition element kernel and launch it over a vector,
    // one virtual CUDA thread per element.
    let generated = Compiler::default().compile(&KernelSpec::new(KernelOp::ModAdd, 128));
    let q_big = paper_modulus(128);
    let q = MpUint::<2>::from_limbs_le(&q_big.to_limbs_le(2));
    let ring = ModRing::new(q);

    let n = 256;
    let mut rng = StdRng::seed_from_u64(11);
    let a: Vec<MpUint<2>> = (0..n).map(|_| ring.random_element(&mut rng)).collect();
    let b: Vec<MpUint<2>> = (0..n).map(|_| ring.random_element(&mut rng)).collect();

    let msb = |x: &MpUint<2>| {
        let l = x.limbs();
        [l[1], l[0]]
    };
    let (outputs, stats) = launch_kernel(&generated.kernel, n, |i, params| {
        params[0..2].copy_from_slice(&msb(&a[i]));
        params[2..4].copy_from_slice(&msb(&b[i]));
        params[4..6].copy_from_slice(&msb(&q));
    });
    assert_eq!(stats.threads, n);
    // Outputs come back flat, `output_count` (here 2) words per element.
    for i in 0..n {
        let expected = ring.add(a[i], b[i]);
        let got = MpUint::<2>::from_limbs_le(&[outputs[2 * i + 1], outputs[2 * i]]);
        assert_eq!(got, expected, "element {i}");
    }
}

#[test]
fn cost_model_reproduces_figure_shapes() {
    // Per-butterfly time grows with bit-width (Figure 5a) ...
    let session = Session::default();
    let h100 = DeviceSpec::H100;
    let t128 = session.modelled_ntt_ns_per_butterfly(h100, 128, 12, MulAlgorithm::Schoolbook);
    let t256 = session.modelled_ntt_ns_per_butterfly(h100, 256, 12, MulAlgorithm::Schoolbook);
    let t512 = session.modelled_ntt_ns_per_butterfly(h100, 512, 12, MulAlgorithm::Schoolbook);
    let t1024 = session.modelled_ntt_ns_per_butterfly(h100, 1024, 12, MulAlgorithm::Schoolbook);
    assert!(t128 < t256 && t256 < t512 && t512 < t1024);
    // ... with super-linear slowdown factors (the paper reports 5.6x from 128 to 256,
    // 4.8x from 256 to 512, 4.7x from 512 to 1024 on H100).
    assert!(t256 / t128 > 2.0);
    assert!(t512 / t256 > 2.0);

    // The V100 is the slowest device at every width (Figure 3).
    for bits in [128u32, 256, 384] {
        let v = session.modelled_ntt_ns_per_butterfly(
            DeviceSpec::V100,
            bits,
            14,
            MulAlgorithm::Schoolbook,
        );
        let h = session.modelled_ntt_ns_per_butterfly(
            DeviceSpec::H100,
            bits,
            14,
            MulAlgorithm::Schoolbook,
        );
        assert!(v > h, "{bits}");
    }

    // The shared-memory cliff: V100 per-butterfly time jumps between 2^10 and 2^12
    // (Figure 3a shows the significant slowdown for sizes 2^11 and larger).
    let model = CostModel::new(DeviceSpec::V100);
    let counts = session.butterfly_op_counts(128, MulAlgorithm::Schoolbook);
    let small = model.ntt_time_per_butterfly_ns(&counts, 1 << 10, 128);
    let large = model.ntt_time_per_butterfly_ns(&counts, 1 << 12, 128);
    assert!(large > small);
}

#[test]
fn zero_pruning_reduces_modelled_time_for_padded_widths() {
    // 384-bit butterflies (stored in 512-bit containers) must be modelled as faster
    // than full 512-bit butterflies — this is what makes Figure 3c sit below a
    // hypothetical 512-bit curve.
    let session = Session::default();
    let t384 =
        session.modelled_ntt_ns_per_butterfly(DeviceSpec::H100, 384, 16, MulAlgorithm::Schoolbook);
    let t512 =
        session.modelled_ntt_ns_per_butterfly(DeviceSpec::H100, 512, 16, MulAlgorithm::Schoolbook);
    assert!(t384 < t512);
}

#[test]
fn launcher_handles_large_batches_deterministically() {
    let mut rng = StdRng::seed_from_u64(5);
    let data: Vec<u64> = (0..10_000).map(|_| rng.gen()).collect();
    let generated = Compiler::default().compile(&KernelSpec::new(KernelOp::ModAdd, 64));
    let q = paper_modulus(64).to_u64().unwrap();
    let fill = |i: usize, params: &mut [u64]| {
        params.copy_from_slice(&[data[i] % q, data[(i + 1) % data.len()] % q, q]);
    };
    let (out1, _) = launch_kernel(&generated.kernel, data.len(), fill);
    let (out2, _) = launch_kernel(&generated.kernel, data.len(), fill);
    assert_eq!(out1, out2);
}
