//! Concurrency contract of the shared `Session`: stampede-controlled plan
//! caches (same-key requests build exactly once, different-key requests never
//! serialize), owned `Send + 'static` handles that cross threads bit-for-bit
//! intact, and recovery from panicking builders.

use moma::bignum::BigUint;
use moma::rns::RnsContext;
use moma::{NttSpace, RnsSpace, RnsVec, Session};
use std::sync::{Arc, Barrier};
use std::thread;

/// Compile-time: the session and every handle it yields are shareable across
/// threads and free of borrowed lifetimes.
const _: () = {
    const fn shareable<T: Send + Sync + 'static>() {}
    shareable::<Session>();
    shareable::<NttSpace>();
    shareable::<RnsSpace>();
    shareable::<RnsVec>();
};

#[test]
fn same_key_stampede_builds_exactly_once() {
    const THREADS: u64 = 8;
    let session = Session::default();
    let barrier = Arc::new(Barrier::new(THREADS as usize));
    let plans: Vec<_> = thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let worker = session.clone();
                let barrier = Arc::clone(&barrier);
                s.spawn(move || {
                    // All threads release at once into the same (q, n) request.
                    barrier.wait();
                    worker.ntt_default(1 << 12)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    // Every thread got the same plan object…
    for space in &plans[1..] {
        assert!(std::ptr::eq(plans[0].plan(), space.plan()));
    }
    // …and the cache saw exactly one build: one miss, N − 1 hits, however the
    // race interleaved. (`contended` counts only the waiters that blocked on
    // the in-flight build; late arrivals that found it published are plain
    // hits, so it can be anywhere in [0, N − 1].)
    let stats = session.stats().ntt;
    assert_eq!(stats.misses, 1, "same-key stampede must build exactly once");
    assert_eq!(stats.hits, THREADS - 1);
    assert!(stats.contended < THREADS);
}

#[test]
fn different_keys_build_concurrently_without_serializing() {
    // Four distinct (q, n) plans built from four threads at once. With builds
    // running outside the map lock this takes ~one build time; the test only
    // asserts completion and per-key single builds (a deadlock or serialization
    // on one coarse lock would time the suite out on the n = 2^13 tables).
    let session = Session::default();
    let sizes = [1 << 10, 1 << 11, 1 << 12, 1 << 13];
    thread::scope(|s| {
        for &n in &sizes {
            let worker = session.clone();
            s.spawn(move || worker.ntt_default(n));
        }
    });
    let stats = session.stats().ntt;
    assert_eq!(stats.misses, sizes.len() as u64, "one build per key");
    assert_eq!(stats.contended, 0, "different keys never contend");
}

#[test]
fn owned_handles_cross_threads_bit_for_bit() {
    let session = Session::default();
    let src = session.rns_with_capacity(128);
    let src_moduli = src.moduli();
    let dst = session.rns(&src_moduli[..4]);

    let mut rng_values = Vec::new();
    let mut x = BigUint::from(0x1234_5678_9abc_def0u64);
    for _ in 0..6 {
        x = (&x * &BigUint::from(0x9e37_79b9u64)) % src.product();
        rng_values.push(x.clone());
    }

    // Encode on this thread; move the owned vector (and spaces) to another
    // thread; run the chain there; bring the result back.
    let encoded = src.encode(&rng_values);
    let out = thread::spawn(move || {
        let squared = encoded.mul(&encoded);
        squared.rescale_then_extend(&dst).to_biguints()
    })
    .join()
    .expect("worker thread");

    // Bit-for-bit against the BigUint oracle, computed on this thread.
    let ctx = RnsContext::with_moduli(&src_moduli);
    let dst_ctx = RnsContext::with_moduli(&src_moduli[..4]);
    let out_ctx = ctx.without_last();
    for (c, v) in rng_values.iter().enumerate() {
        let sq = (v * v) % src.product();
        let oracle = dst_ctx.from_residues(
            &out_ctx.base_convert(&dst_ctx, &ctx.scale_and_round(&ctx.to_residues(&sq))),
        );
        assert_eq!(out[c], oracle, "element {c}");
    }
}

#[test]
fn a_panicking_builder_does_not_wedge_the_session() {
    let session = Session::default();
    let poisoner = session.clone();
    // q = 6 is composite: the NTT plan builder panics mid-build, inside the
    // stampede slot, on another thread.
    let died = thread::spawn(move || poisoner.ntt(6, 8)).join();
    assert!(died.is_err(), "composite modulus must panic");
    // The key was unclaimed and no lock stayed poisoned: the same session
    // still builds, caches, and serves.
    let space = session.ntt_default(8);
    let mut data: Vec<u64> = (0..8).collect();
    let original = data.clone();
    space.forward(&mut data);
    space.inverse(&mut data);
    assert_eq!(data, original);
    let _ = session.ntt_default(8);
    assert_eq!(session.stats().ntt.hits, 1);
}

#[test]
fn clones_observe_each_others_builds() {
    let session = Session::default();
    let results: Vec<u64> = thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let worker = session.clone();
                s.spawn(move || {
                    let space = worker.ntt_default(256);
                    let mut data = vec![0u64; 256];
                    data[0] = i;
                    space.forward(&mut data);
                    data[0]
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(results.len(), 4);
    let stats = session.stats().ntt;
    assert_eq!(
        stats.misses, 1,
        "four clones share one cache: one build total"
    );
}
