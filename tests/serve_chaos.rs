//! Chaos soak: hundreds of mixed requests through a server with a seeded
//! fault plan — injected panics, delays, spurious batch failures, and worker
//! deaths — asserting the robustness contract end to end:
//!
//! * **no hangs, no leaks**: every submitted ticket resolves (bounded by
//!   `wait_timeout`), and the outstanding gauge returns to zero;
//! * **full accounting**: completed + failed + expired + lost-to-dying-worker
//!   covers every accepted request exactly;
//! * **supervision**: the worker pool ends at full strength (`restarts > 0`
//!   after the injected deaths);
//! * **no corruption**: after the chaos, the same session answers bit-for-bit
//!   identically to the inline path.
//!
//! The schedule is deterministic: `FaultPlan::seeded` derives every fault
//! from a fixed seed, and a single submitter thread pins request `i` to
//! sequence number `i`, so which requests panic, stall, fail, or kill their
//! worker is reproducible run to run.

use moma::bignum::BigUint;
use moma::Session;
use moma_serve::{Fault, FaultPlan, Response, ServeConfig, ServeError, Server, Ticket, WorkItem};
use std::collections::HashSet;
use std::time::{Duration, Instant};

const SEED: u64 = 0xC4A05;
const TOTAL: u64 = 300;
const N: usize = 64;

fn ntt_forward(q: u64, i: u64) -> WorkItem {
    WorkItem::NttForward {
        q,
        n: N,
        data: (0..N as u64).map(|j| (i * 131 + j * 7) % q).collect(),
    }
}

fn ntt_inverse(q: u64, i: u64) -> WorkItem {
    WorkItem::NttInverse {
        q,
        n: N,
        data: (0..N as u64).map(|j| (i * 97 + j * 13) % q).collect(),
    }
}

#[test]
fn chaos_soak_every_ticket_resolves_and_the_pool_recovers() {
    let plan = FaultPlan::seeded(SEED, TOTAL);
    // The seeded schedule must actually exercise every failure path.
    let deaths = plan.iter().filter(|(_, f)| *f == Fault::Die).count() as u64;
    assert!(deaths >= 1, "the soak needs at least one worker death");
    assert!(plan.iter().any(|(_, f)| f == Fault::Panic));
    assert!(plan.iter().any(|(_, f)| matches!(f, Fault::Delay(_))));
    assert!(plan.iter().any(|(_, f)| f == Fault::Fail));
    // Requests whose batch is injected with a delay get a deadline shorter
    // than that delay: the worker-side re-check must expire them.
    let delayed: HashSet<u64> = plan
        .iter()
        .filter(|(_, f)| matches!(f, Fault::Delay(_)))
        .map(|(seq, _)| seq)
        .collect();

    let session = Session::default();
    let server = Server::new(
        session.clone(),
        ServeConfig {
            workers: 3,
            max_batch: 16,
            min_batch: 1,
            batch_window: Duration::from_millis(1),
            queue_depth: TOTAL as usize + 16,
            fault_plan: plan,
        },
    );
    let client = server.client();
    let q = session.ntt_default(N).modulus();
    let src_moduli = session.rns_with_capacity(128).moduli();
    let tenant = server.register_tenant(&src_moduli, &src_moduli[..4]);

    // One submitter pins request i to sequence number i (the queue is deep
    // enough that nothing is shed, so the numbering has no gaps). The mix
    // covers three batch keys so groups interleave across the worker pool.
    let tickets: Vec<(u64, Ticket)> = (0..TOTAL)
        .map(|i| {
            let item = match i % 16 {
                15 => WorkItem::RnsMulRescaleExtend {
                    tenant,
                    a: (0..3)
                        .map(|j| BigUint::from(i * 1009 + j * 37 + 1))
                        .collect(),
                    b: (0..3)
                        .map(|j| BigUint::from(i * 613 + j * 41 + 2))
                        .collect(),
                },
                j if j % 2 == 1 => ntt_inverse(q, i),
                _ => ntt_forward(q, i),
            };
            let ticket = if delayed.contains(&i) {
                client
                    .submit_with_deadline(item, Duration::from_millis(1))
                    .expect("queue is deep enough for the whole soak")
            } else {
                client
                    .submit(item)
                    .expect("queue is deep enough for the whole soak")
            };
            (i, ticket)
        })
        .collect();

    // Every ticket resolves — injected faults may fail a request, but none
    // may hang it or leak it.
    let (mut completed, mut failed, mut expired, mut lost) = (0u64, 0u64, 0u64, 0u64);
    for (i, ticket) in tickets {
        match ticket
            .wait_timeout(Duration::from_secs(60))
            .unwrap_or_else(|| panic!("request {i} hung through the chaos soak"))
        {
            Ok(done) => {
                assert!(done.batch_size >= 1);
                completed += 1;
            }
            Err(ServeError::Internal { message, .. }) => {
                assert!(message.contains("injected fault"), "request {i}: {message}");
                failed += 1;
            }
            Err(ServeError::DeadlineExceeded) => expired += 1,
            // A dying worker drops its batch's reply paths mid-stack.
            Err(ServeError::Shutdown) => lost += 1,
            Err(other) => panic!("request {i}: unexpected resolution {other}"),
        }
    }
    assert_eq!(
        completed + failed + expired + lost,
        TOTAL,
        "every accepted request is accounted for exactly once"
    );
    assert!(
        completed > 0 && failed > 0,
        "the mix must exercise both outcomes"
    );

    // The supervisor replaced the killed workers: the pool is at strength.
    let deadline = Instant::now() + Duration::from_secs(30);
    while server.stats().restarts == 0 {
        assert!(
            Instant::now() < deadline,
            "supervisor never respawned a dead worker"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    let stats = server.stats();
    assert!(
        stats.restarts <= deaths,
        "at most one restart per injected death"
    );
    assert_eq!(stats.submitted, TOTAL);
    assert_eq!(stats.shed, 0, "the soak queue is never full");
    assert_eq!(stats.completed, completed);
    assert_eq!(stats.failed, failed);
    assert_eq!(stats.expired, expired);

    // No leaks: with all tickets resolved, nothing is outstanding.
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.stats().outstanding != 0 {
        assert!(Instant::now() < deadline, "outstanding gauge never drained");
        std::thread::sleep(Duration::from_millis(1));
    }

    // Post-chaos, the very same session answers bit-for-bit correctly, with
    // enough concurrent requests in flight to touch every (respawned) worker.
    let space = session.ntt(q, N);
    let post: Vec<(Ticket, Vec<u64>)> = (0..6)
        .map(|i| {
            let WorkItem::NttForward { data, .. } = ntt_forward(q, TOTAL + i) else {
                unreachable!()
            };
            let ticket = client
                .submit(WorkItem::NttForward {
                    q,
                    n: N,
                    data: data.clone(),
                })
                .expect("post-chaos submissions are clean");
            (ticket, data)
        })
        .collect();
    for (ticket, data) in post {
        let done = ticket
            .wait_timeout(Duration::from_secs(60))
            .expect("post-chaos request resolves")
            .expect("post-chaos request succeeds");
        let Response::Ntt(served) = done.response else {
            panic!("NTT work yields NTT responses")
        };
        let mut expected = data;
        space.forward(&mut expected);
        assert_eq!(
            served, expected,
            "post-chaos results are bit-for-bit correct"
        );
    }
}
