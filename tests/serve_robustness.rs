//! Robustness contract of the `moma-serve` front-end, exercised
//! deterministically through the seeded fault-injection plan: deadlines,
//! admission control and load shedding, retry with backoff, worker
//! supervision, graceful drain, and shutdown-while-in-flight.
//!
//! Every test here drives a *real* server (threads, channels, launchers) —
//! the fault plan only decides *when* things go wrong, never *how* the
//! recovery paths work.

use moma::Session;
use moma_serve::{
    Fault, FaultPlan, Response, RetryPolicy, ServeConfig, ServeError, Server, WorkItem,
};
use std::time::{Duration, Instant};

/// A small deterministic NTT request: `n` ascending coefficients below `q`.
fn ntt_item(q: u64, n: usize) -> WorkItem {
    WorkItem::NttForward {
        q,
        n,
        data: (0..n as u64).map(|i| i % q).collect(),
    }
}

/// A one-worker, no-coalescing server whose first request (seq 0) wedges the
/// worker for `wedge`: the smallest deterministic overload machine.
fn wedged_server(session: &Session, queue_depth: usize, wedge: Duration) -> Server {
    Server::new(
        session.clone(),
        ServeConfig {
            workers: 1,
            max_batch: 1,
            min_batch: 1,
            batch_window: Duration::ZERO,
            queue_depth,
            fault_plan: FaultPlan::new().with(0, Fault::Delay(wedge)),
        },
    )
}

#[test]
fn dispatcher_drops_already_expired_requests() {
    let session = Session::default();
    let server = Server::new(session.clone(), ServeConfig::default());
    let client = server.client();
    let q = session.ntt_default(64).modulus();
    // A zero budget is expired the moment the dispatcher looks at it.
    let err = client
        .call_with_deadline(ntt_item(q, 64), Duration::ZERO)
        .unwrap_err();
    assert_eq!(err, ServeError::DeadlineExceeded);
    let stats = server.stats();
    assert_eq!(stats.expired, 1);
    assert_eq!(stats.completed, 0);
    assert_eq!(stats.batches, 0, "no launch was wasted on a dead request");
}

#[test]
fn workers_recheck_deadlines_after_a_slow_batch() {
    let session = Session::default();
    // Seq 0 is delayed far past its own budget: wherever the deadline check
    // catches it (worker re-check normally; dispatcher if CI stalls), the
    // request must expire rather than execute.
    let server = wedged_server(&session, 16, Duration::from_millis(60));
    let client = server.client();
    let q = session.ntt_default(64).modulus();
    let err = client
        .call_with_deadline(ntt_item(q, 64), Duration::from_millis(5))
        .unwrap_err();
    assert_eq!(err, ServeError::DeadlineExceeded);
    let stats = server.stats();
    assert_eq!(stats.expired, 1);
    assert_eq!(stats.completed, 0);
}

#[test]
fn full_queue_sheds_at_admission_instead_of_queueing() {
    let session = Session::default();
    let server = wedged_server(&session, 1, Duration::from_millis(200));
    let client = server.client();
    let q = session.ntt_default(64).modulus();

    // Wedge the single worker, then flood. The pipeline absorbs a bounded
    // handful (executing + work channel + dispatcher-held + queue_depth);
    // everything past that must fail fast with Overloaded.
    let wedge = client.submit(ntt_item(q, 64)).unwrap();
    let mut tickets = Vec::new();
    let mut shed = 0;
    let t0 = Instant::now();
    for _ in 0..12 {
        match client.submit(ntt_item(q, 64)) {
            Ok(ticket) => tickets.push(ticket),
            Err(ServeError::Overloaded) => shed += 1,
            Err(other) => panic!("unexpected submit error: {other}"),
        }
    }
    let flood_time = t0.elapsed();
    assert!(shed >= 1, "a bounded queue must shed under a wedged worker");
    assert!(
        flood_time < Duration::from_millis(150),
        "shedding must fail fast, not wait out the wedge ({flood_time:?})"
    );
    assert_eq!(server.stats().shed, shed);

    // Absorbed requests still complete once the wedge clears.
    assert!(wedge.wait().is_ok());
    for ticket in tickets {
        assert!(ticket.wait().is_ok());
    }
    let stats = server.stats();
    assert_eq!(stats.completed, stats.submitted);
    assert_eq!(stats.outstanding, 0);
}

#[test]
fn retry_rides_out_transient_overload() {
    let session = Session::default();
    let server = wedged_server(&session, 1, Duration::from_millis(80));
    let client = server.client();
    let q = session.ntt_default(64).modulus();

    // Wedge, then saturate the pipeline so the next submission is shed.
    let wedge = client.submit(ntt_item(q, 64)).unwrap();
    let mut tickets = Vec::new();
    loop {
        match client.submit(ntt_item(q, 64)) {
            Ok(ticket) => tickets.push(ticket),
            Err(ServeError::Overloaded) => break,
            Err(other) => panic!("unexpected submit error: {other}"),
        }
    }
    assert!(server.stats().shed >= 1);

    // The retrying call keeps backing off until the wedge clears and a queue
    // slot frees up; its budget comfortably outlives the 80 ms wedge.
    let done = client
        .call_with_retry(
            ntt_item(q, 64),
            &RetryPolicy {
                attempts: 20,
                base_backoff: Duration::from_millis(5),
                max_backoff: Duration::from_millis(40),
                seed: 1,
            },
        )
        .expect("retry must eventually get through");
    let Response::Ntt(_) = done.response else {
        panic!("NTT work yields NTT responses")
    };
    assert!(wedge.wait().is_ok());
    for ticket in tickets {
        assert!(ticket.wait().is_ok());
    }
}

#[test]
fn retry_exhausts_its_budget_and_keeps_the_cause() {
    use std::error::Error;
    let session = Session::default();
    // Every request spuriously fails: retryable, but hopeless.
    let mut plan = FaultPlan::new();
    for seq in 0..64 {
        plan = plan.with(seq, Fault::Fail);
    }
    let server = Server::new(
        session.clone(),
        ServeConfig {
            fault_plan: plan,
            ..ServeConfig::default()
        },
    );
    let client = server.client();
    let q = session.ntt_default(64).modulus();
    let err = client
        .call_with_retry(
            ntt_item(q, 64),
            &RetryPolicy {
                attempts: 3,
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(2),
                seed: 0,
            },
        )
        .unwrap_err();
    assert_eq!(err.attempts, 3);
    assert!(err.last.is_retryable());
    let source = err.source().expect("retry errors carry their cause");
    assert!(source.to_string().contains("spurious batch failure"));

    // A non-retryable error short-circuits on the first attempt.
    let err = client
        .call_with_retry(
            WorkItem::NttForward {
                q,
                n: 6,
                data: vec![0; 6],
            },
            &RetryPolicy::default(),
        )
        .unwrap_err();
    assert_eq!(err.attempts, 1);
    assert!(matches!(err.last, ServeError::BadRequest(_)));
}

#[test]
fn internal_errors_preserve_batch_kind_and_size() {
    let session = Session::default();
    let server = Server::new(
        session.clone(),
        ServeConfig {
            workers: 1,
            max_batch: 4,
            min_batch: 2,
            batch_window: Duration::from_secs(5),
            fault_plan: FaultPlan::new().with(0, Fault::Panic),
            ..ServeConfig::default()
        },
    );
    let client = server.client();
    let q = session.ntt_default(64).modulus();
    // Two requests coalesce into one batch; the injected panic fails both
    // with the batch context preserved.
    let t1 = client.submit(ntt_item(q, 64)).unwrap();
    let t2 = client.submit(ntt_item(q, 64)).unwrap();
    for ticket in [t1, t2] {
        let err = ticket.wait().unwrap_err();
        let ServeError::Internal {
            kind,
            batch_size,
            message,
        } = &err
        else {
            panic!("expected Internal, got {err:?}")
        };
        assert_eq!(*kind, "ntt_forward");
        assert_eq!(*batch_size, 2);
        assert!(message.contains("injected fault"), "{message}");
        assert!(err.to_string().contains("ntt_forward batch of 2"), "{err}");
    }
    assert_eq!(server.stats().failed, 2);
}

#[test]
fn wait_timeout_reports_pending_without_consuming_the_ticket() {
    let session = Session::default();
    let server = wedged_server(&session, 8, Duration::from_millis(100));
    let client = server.client();
    let q = session.ntt_default(64).modulus();
    let ticket = client.submit(ntt_item(q, 64)).unwrap();
    // The worker is asleep for 100 ms: a 5 ms wait must time out...
    assert!(ticket.wait_timeout(Duration::from_millis(5)).is_none());
    // ...and the same ticket still resolves once the batch lands.
    let done = ticket
        .wait_timeout(Duration::from_secs(10))
        .expect("request resolves after the delay")
        .expect("delayed batch still succeeds");
    assert!(matches!(done.response, Response::Ntt(_)));
}

#[test]
fn supervisor_respawns_a_dead_worker() {
    let session = Session::default();
    // One worker, killed by the very first request: only a respawned thread
    // can serve anything afterwards.
    let server = Server::new(
        session.clone(),
        ServeConfig {
            workers: 1,
            max_batch: 1,
            min_batch: 1,
            batch_window: Duration::ZERO,
            fault_plan: FaultPlan::new().with(0, Fault::Die),
            ..ServeConfig::default()
        },
    );
    let client = server.client();
    let q = session.ntt_default(64).modulus();
    // The killing request's reply path dies with the worker's stack.
    let err = client.call(ntt_item(q, 64)).unwrap_err();
    assert_eq!(err, ServeError::Shutdown);

    // The supervisor notices and respawns; the pool is back at strength.
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.stats().restarts == 0 {
        assert!(Instant::now() < deadline, "supervisor never respawned");
        std::thread::sleep(Duration::from_millis(2));
    }
    let done = client
        .call(ntt_item(q, 64))
        .expect("respawned worker serves");
    assert!(matches!(done.response, Response::Ntt(_)));
    let stats = server.stats();
    assert_eq!(stats.restarts, 1);
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.outstanding, 0);
}

#[test]
fn drain_completes_in_flight_work_then_rejects_new_submissions() {
    let session = Session::default();
    let server = wedged_server(&session, 16, Duration::from_millis(50));
    let client = server.client();
    let q = session.ntt_default(64).modulus();
    let tickets: Vec<_> = (0..4)
        .map(|_| client.submit(ntt_item(q, 64)).unwrap())
        .collect();
    // Drain waits out the wedge and the queued work...
    assert!(server.drain(Duration::from_secs(10)));
    assert_eq!(server.stats().outstanding, 0);
    // ...everything accepted before the drain resolved successfully...
    for ticket in tickets {
        assert!(ticket.wait().is_ok());
    }
    assert_eq!(server.stats().completed, 4);
    // ...and nothing new is admitted.
    assert!(matches!(
        client.submit(ntt_item(q, 64)),
        Err(ServeError::Shutdown)
    ));
}

#[test]
fn drain_times_out_when_work_cannot_finish_in_time() {
    let session = Session::default();
    let server = wedged_server(&session, 16, Duration::from_millis(300));
    let client = server.client();
    let q = session.ntt_default(64).modulus();
    let ticket = client.submit(ntt_item(q, 64)).unwrap();
    // The wedge outlives the drain budget: drain must give up, not hang.
    assert!(!server.drain(Duration::from_millis(20)));
    assert!(server.stats().outstanding >= 1);
    // A second, patient drain finishes the job.
    assert!(server.drain(Duration::from_secs(10)));
    assert!(ticket.wait().is_ok());
}

#[test]
fn dropping_the_server_resolves_every_outstanding_ticket() {
    let session = Session::default();
    let server = wedged_server(&session, 8, Duration::from_millis(200));
    let client = server.client();
    let q = session.ntt_default(64).modulus();
    // Wedge the worker, then stack requests through the whole pipeline:
    // executing, work channel, dispatcher-held, and the submission queue.
    let tickets: Vec<_> = (0..5)
        .map(|_| client.submit(ntt_item(q, 64)).unwrap())
        .collect();
    drop(server);
    // Every ticket must resolve promptly — completed if its batch made it to
    // a worker before shutdown, ServeError::Shutdown if it was still queued.
    // None may hang.
    let mut shut_down = 0;
    for ticket in tickets {
        match ticket
            .wait_timeout(Duration::from_secs(10))
            .expect("no ticket may hang across server drop")
        {
            Ok(done) => assert!(matches!(done.response, Response::Ntt(_))),
            Err(ServeError::Shutdown) => shut_down += 1,
            Err(other) => panic!("unexpected resolution: {other}"),
        }
    }
    assert!(
        shut_down >= 1,
        "requests queued behind the wedge must resolve to Shutdown"
    );
}
