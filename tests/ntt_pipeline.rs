//! Integration test: the NTT and BLAS pipelines over the runtime library, checked
//! against the arbitrary-precision oracle and against each other.

use moma::bignum::BigUint;
use moma::blas;
use moma::mp::{ModRing, MpUint, MulAlgorithm};
use moma::ntt::params::{paper_modulus, NttParams};
use moma::ntt::polymul::ntt_polymul;
use moma::ntt::reference::{naive_dft, schoolbook_polymul};
use moma::ntt::transform::{forward, inverse};
use moma::rns::{vector as rns_vector, RnsContext};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn ntt_roundtrip_and_dft_agreement_256() {
    let params = NttParams::<4>::for_paper_modulus(64, 256, MulAlgorithm::Schoolbook);
    let mut rng = StdRng::seed_from_u64(1);
    let data: Vec<_> = (0..64)
        .map(|_| params.ring.random_element(&mut rng))
        .collect();

    let mut fast = data.clone();
    forward(&params, &mut fast);
    assert_eq!(fast, naive_dft(&params, &data));
    inverse(&params, &mut fast);
    assert_eq!(fast, data);
}

#[test]
fn polynomial_product_matches_oracle_convolution() {
    // Compare the NTT-based polynomial product against a BigUint convolution.
    let bits = 128u32;
    let q_big = paper_modulus(bits);
    let params = NttParams::<2>::for_paper_modulus(2, bits, MulAlgorithm::Schoolbook);
    let mut rng = StdRng::seed_from_u64(2);
    let a: Vec<_> = (0..40)
        .map(|_| params.ring.random_element(&mut rng))
        .collect();
    let b: Vec<_> = (0..25)
        .map(|_| params.ring.random_element(&mut rng))
        .collect();

    let fast = ntt_polymul(bits, MulAlgorithm::Schoolbook, &a, &b);
    let slow = schoolbook_polymul(&params, &a, &b);
    assert_eq!(fast, slow);

    // Spot-check one coefficient against BigUint arithmetic.
    let to_big = |x: &MpUint<2>| BigUint::from_limbs_le(x.limbs().to_vec());
    let k = 17;
    let mut expected = BigUint::zero();
    for i in 0..=k {
        if i < a.len() && k - i < b.len() {
            expected = (&expected + &(&to_big(&a[i]) * &to_big(&b[k - i]))) % &q_big;
        }
    }
    assert_eq!(to_big(&fast[k]), expected);
}

#[test]
fn blas_matches_oracle_and_rns_baseline() {
    let bits = 256u32;
    let q_big = paper_modulus(bits);
    let q = MpUint::<4>::from_limbs_le(&q_big.to_limbs_le(4));
    let ring = ModRing::new(q);
    let mut rng = StdRng::seed_from_u64(3);
    let n = 64;
    let a: Vec<_> = (0..n).map(|_| ring.random_element(&mut rng)).collect();
    let b: Vec<_> = (0..n).map(|_| ring.random_element(&mut rng)).collect();
    let to_big = |x: &MpUint<4>| BigUint::from_limbs_le(x.limbs().to_vec());

    // MoMA runtime library result.
    let moma_prod = blas::vec_mul_mod(&ring, &a, &b);
    let moma_sum = blas::vec_add_mod(&ring, &a, &b);

    // Oracle (GMP stand-in).
    for i in 0..n {
        assert_eq!(
            to_big(&moma_prod[i]),
            to_big(&a[i]).mod_mul(&to_big(&b[i]), &q_big)
        );
        assert_eq!(
            to_big(&moma_sum[i]),
            to_big(&a[i]).mod_add(&to_big(&b[i]), &q_big)
        );
    }

    // GRNS stand-in (RNS): product before reduction, then reduced mod q.
    let ctx = RnsContext::with_capacity_bits(2 * bits + 8);
    let a_big: Vec<BigUint> = a.iter().map(to_big).collect();
    let b_big: Vec<BigUint> = b.iter().map(to_big).collect();
    let ra = rns_vector::RnsVector::from_biguints(&ctx, &a_big);
    let rb = rns_vector::RnsVector::from_biguints(&ctx, &b_big);
    let rns_prod = rns_vector::vec_reduce_mod(&ctx, &rns_vector::vec_mul(&ctx, &ra, &rb), &q_big)
        .to_biguints(&ctx);
    for i in 0..n {
        assert_eq!(rns_prod[i], to_big(&moma_prod[i]));
    }
}

#[test]
fn karatsuba_and_schoolbook_ntts_agree_at_768_bits() {
    let sb = NttParams::<12>::for_paper_modulus(16, 768, MulAlgorithm::Schoolbook);
    let ka = NttParams::<12>::for_paper_modulus(16, 768, MulAlgorithm::Karatsuba);
    let mut rng = StdRng::seed_from_u64(4);
    let data: Vec<_> = (0..16).map(|_| sb.ring.random_element(&mut rng)).collect();
    let mut x = data.clone();
    let mut y = data;
    forward(&sb, &mut x);
    forward(&ka, &mut y);
    assert_eq!(x, y);
}
