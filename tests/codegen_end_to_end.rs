//! Integration test: code generation end to end.
//!
//! For every kernel the evaluation uses, at several bit-widths and both multiplication
//! algorithms, compile with the MoMA rewrite system, check the emitted artifacts, and
//! verify that interpreting the generated machine code agrees with the runtime library
//! (`moma-mp`) and the arbitrary-precision oracle (`moma-bignum`).

use moma::bignum::BigUint;
use moma::mp::{BarrettContext, MpUint};
use moma::{Compiler, KernelOp, KernelSpec, LoweringConfig, MulAlgorithm};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn to_msb_words(x: &BigUint, words: usize) -> Vec<u64> {
    let mut w = x.to_limbs_le(words);
    w.reverse();
    w
}

fn from_msb_words(words: &[u64]) -> BigUint {
    words
        .iter()
        .fold(BigUint::zero(), |acc, &w| (acc << 64) + BigUint::from(w))
}

#[test]
fn generated_artifacts_are_complete_for_all_kernels() {
    let compiler = Compiler::default();
    for op in KernelOp::all() {
        for bits in [128u32, 256, 384] {
            let generated = compiler.compile(&KernelSpec::new(op, bits));
            assert!(generated.kernel.is_machine_level(64), "{op:?} {bits}");
            assert!(generated.cuda_source.contains("__device__ void"));
            assert!(generated.rust_source.contains("pub fn"));
            assert!(generated.op_counts.total() > 0);
            assert!(moma::ir::validate::validate(&generated.kernel).is_ok());
        }
    }
}

#[test]
fn generated_modmul_matches_runtime_library_and_oracle_256() {
    let spec = KernelSpec::new(KernelOp::ModMul, 256);
    let q_big = moma::ntt::params::paper_modulus(256);
    let mu_big = (BigUint::from(1u64) << (2 * q_big.bits() + 3)) / &q_big;
    let q = MpUint::<4>::from_limbs_le(&q_big.to_limbs_le(4));
    let runtime = BarrettContext::new(q);

    let mut rng = StdRng::seed_from_u64(99);
    for alg in [MulAlgorithm::Schoolbook, MulAlgorithm::Karatsuba] {
        let compiler = Compiler::new(LoweringConfig {
            mul_algorithm: alg,
            ..LoweringConfig::default()
        });
        let generated = compiler.compile(&spec);
        for _ in 0..20 {
            let a_big = moma::bignum::random::random_below(&mut rng, &q_big);
            let b_big = moma::bignum::random::random_below(&mut rng, &q_big);
            let mut inputs = Vec::new();
            inputs.extend(to_msb_words(&a_big, 4));
            inputs.extend(to_msb_words(&b_big, 4));
            inputs.extend(to_msb_words(&q_big, 4));
            inputs.extend(to_msb_words(&mu_big, 4));
            let got = from_msb_words(&generated.run(&inputs).unwrap());

            // Oracle and runtime library must all agree with the generated code.
            let expected_oracle = a_big.mod_mul(&b_big, &q_big);
            let a_mp = MpUint::<4>::from_limbs_le(&a_big.to_limbs_le(4));
            let b_mp = MpUint::<4>::from_limbs_le(&b_big.to_limbs_le(4));
            let expected_runtime = runtime.mul_mod(a_mp, b_mp);
            assert_eq!(got, expected_oracle, "{alg:?}");
            assert_eq!(
                BigUint::from_limbs_le(expected_runtime.limbs().to_vec()),
                expected_oracle
            );
        }
    }
}

#[test]
fn generated_butterfly_matches_oracle_381_bits() {
    // Non-power-of-two width with zero pruning: the headline §4 optimization.
    let spec = KernelSpec::new(KernelOp::Butterfly, 381);
    let compiler = Compiler::default();
    let generated = compiler.compile(&spec);

    let mbits = spec.modulus_bits();
    let q_big = {
        // Deterministic 377-bit odd modulus with the top bit set.
        let mut v = BigUint::from(1u64) << (mbits - 1);
        v = v + BigUint::from(0x2f0f_0f0f_0f0fu64);
        v
    };
    let mu_big = (BigUint::from(1u64) << (2 * mbits + 3)) / &q_big;

    let words = 8; // padded to 512 bits = 8 words
    let mut rng = StdRng::seed_from_u64(123);
    for _ in 0..10 {
        let x = moma::bignum::random::random_below(&mut rng, &q_big);
        let y = moma::bignum::random::random_below(&mut rng, &q_big);
        let w = moma::bignum::random::random_below(&mut rng, &q_big);

        // The pruned kernel has dropped the known-zero leading words from its
        // signature; feed the surviving words per original parameter.
        let packed: std::collections::HashMap<&str, Vec<u64>> = [
            ("x", to_msb_words(&x, words)),
            ("y", to_msb_words(&y, words)),
            ("w", to_msb_words(&w, words)),
            ("q", to_msb_words(&q_big, words)),
            ("mu", to_msb_words(&mu_big, words)),
        ]
        .into_iter()
        .collect();
        let mut remaining: std::collections::HashMap<&str, std::collections::VecDeque<u64>> =
            std::collections::HashMap::new();
        for p in &generated.kernel.params {
            let name = &generated.kernel.var(*p).name;
            let root = ["mu", "x", "y", "w", "q"]
                .into_iter()
                .find(|r| name == r || name.starts_with(&format!("{r}_")))
                .unwrap();
            remaining.entry(root).or_insert_with(|| {
                let full = &packed[root];
                let kept = generated
                    .kernel
                    .params
                    .iter()
                    .filter(|p| {
                        let n = &generated.kernel.var(**p).name;
                        n == root || n.starts_with(&format!("{root}_"))
                    })
                    .count();
                full[full.len() - kept..].iter().copied().collect()
            });
        }
        let mut inputs = Vec::new();
        for p in &generated.kernel.params {
            let name = &generated.kernel.var(*p).name;
            let root = ["mu", "x", "y", "w", "q"]
                .into_iter()
                .find(|r| name == r || name.starts_with(&format!("{r}_")))
                .unwrap();
            inputs.push(remaining.get_mut(root).unwrap().pop_front().unwrap());
        }
        let out = generated.run(&inputs).unwrap();
        let half = out.len() / 2;
        let x_out = from_msb_words(&out[..half]);
        let y_out = from_msb_words(&out[half..]);

        let wy = w.mod_mul(&y, &q_big);
        assert_eq!(x_out, x.mod_add(&wy, &q_big));
        assert_eq!(y_out, x.mod_sub(&wy, &q_big));
    }
}

#[test]
fn word_width_32_generates_twice_the_words() {
    let spec = KernelSpec::new(KernelOp::ModAdd, 128);
    let k64 = Compiler::default().compile(&spec);
    let k32 = Compiler::new(LoweringConfig::for_word_bits(32)).compile(&spec);
    assert!(k32.kernel.params.len() > k64.kernel.params.len());
    assert!(k32.op_counts.total() > k64.op_counts.total());
}
