//! Cross-crate integration tests for the `moma::Session` API: plan and kernel
//! reuse is asserted through the hit counters (a second identical request must
//! build nothing), and the typed handles must agree with the low-level oracles
//! they wrap.

use moma::bignum::BigUint;
use moma::rns::RnsContext;
use moma::{KernelOp, KernelSpec, Session};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn random_values(seed: u64, count: usize, below: &BigUint) -> Vec<BigUint> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| moma::bignum::random::random_below(&mut rng, below))
        .collect()
}

#[test]
fn second_identical_request_builds_nothing_anywhere() {
    let session = Session::default();
    let src = session.rns_with_capacity(160);
    let src_moduli = src.moduli();
    let dst = session.rns(&src_moduli[..4]);
    let values = random_values(1, 6, src.product());

    // Warm-up: every cache misses once.
    let _ = session.compile(&KernelSpec::new(KernelOp::Butterfly, 256));
    let ntt = session.ntt_default(256);
    let bc = src.conversion_to(&dst);
    let _ = src.conversion_kernels(&bc);
    let warm = src.encode(&values).mul(&src.encode(&values));
    let _ = warm.rescale_then_extend(&dst);
    let _ = warm.base_convert(&dst);
    let _ = warm.rescale();
    let baseline = session.stats();
    assert!(baseline.generated.misses > 0);
    assert!(baseline.ntt.misses > 0);
    assert!(baseline.rns.misses > 0);
    assert!(baseline.baseconv.misses > 0);
    assert!(baseline.rescale.misses > 0);
    assert!(baseline.rescale_extend.misses > 0);
    assert!(baseline.kernels.misses > 0);

    // The identical second round: hits only, not a single new build.
    let _ = session.compile(&KernelSpec::new(KernelOp::Butterfly, 256));
    let ntt_again = session.ntt_default(256);
    assert!(std::ptr::eq(ntt.plan(), ntt_again.plan()));
    let bc_again = src.conversion_to(&dst);
    let _ = src.conversion_kernels(&bc_again);
    let again = src.encode(&values).mul(&src.encode(&values));
    let _ = again.rescale_then_extend(&dst);
    let _ = again.base_convert(&dst);
    let _ = again.rescale();
    let after = session.stats();

    assert_eq!(after.generated.misses, baseline.generated.misses);
    assert_eq!(after.ntt.misses, baseline.ntt.misses);
    assert_eq!(after.rns.misses, baseline.rns.misses);
    assert_eq!(after.baseconv.misses, baseline.baseconv.misses);
    assert_eq!(after.rescale.misses, baseline.rescale.misses);
    assert_eq!(after.rescale_extend.misses, baseline.rescale_extend.misses);
    assert_eq!(after.kernels.misses, baseline.kernels.misses);
    assert!(after.generated.hits > baseline.generated.hits);
    assert!(after.ntt.hits > baseline.ntt.hits);
    assert!(after.baseconv.hits > baseline.baseconv.hits);
    assert!(after.rescale_extend.hits > baseline.rescale_extend.hits);
    assert!(after.kernels.hits > baseline.kernels.hits);
}

#[test]
fn fused_chain_kernels_are_cached_once_per_shape() {
    let session = Session::default();
    let src = session.rns_with_capacity(160);
    let src_moduli = src.moduli();
    let dst = session.rns(&src_moduli[..4]);
    let x = src.encode(&random_values(7, 5, src.product()));
    let w = src.encode(&random_values(8, 5, src.product()));
    let y = src.encode(&random_values(9, 5, src.product()));
    let a = BigUint::from(0x1234_5678_9abc_u64);
    assert_eq!(session.stats().fused.misses, 0);

    // Warm-up: exactly one fused-kernel compile per chain *shape*.
    let chained = x.mul_axpy(&w, &a, &y);
    let rescaled = x.mul_rescale_then_extend(&w, &dst);
    let _ = x.base_convert(&dst);
    let baseline = session.stats();
    assert_eq!(baseline.fused.misses, 3, "one compile per chain shape");
    assert_eq!(baseline.fused.hits, 0);

    // The fused chains are bit-for-bit the unfused sequences.
    assert_eq!(chained.matrix(), x.mul(&w).axpy(&a, &y).matrix());
    assert_eq!(
        rescaled.matrix(),
        x.mul(&w).rescale_then_extend(&dst).matrix()
    );

    // The identical second round: served entirely from the fused cache.
    let _ = x.mul_axpy(&w, &a, &y);
    let _ = x.mul_rescale_then_extend(&w, &dst);
    let _ = x.base_convert(&dst);
    let after = session.stats();
    assert_eq!(after.fused.misses, baseline.fused.misses);
    assert_eq!(
        after.fused.hits, 3,
        "second identical chain hits every shape"
    );
}

#[test]
fn session_chain_matches_the_biguint_oracle() {
    let session = Session::default();
    let src = session.rns_with_capacity(128);
    let src_moduli = src.moduli();
    let dst = session.rns(&src_moduli[..4]);
    let values = random_values(2, 8, src.product());
    let out = src
        .encode(&values)
        .mul(&src.encode(&values))
        .rescale_then_extend(&dst);

    let ctx = RnsContext::with_moduli(&src_moduli);
    let dst_ctx = RnsContext::with_moduli(&dst.moduli());
    let out_ctx = ctx.without_last();
    for (c, x) in values.iter().enumerate() {
        let sq = (x * x) % src.product();
        let oracle = out_ctx.base_convert(&dst_ctx, &ctx.scale_and_round(&ctx.to_residues(&sq)));
        assert_eq!(out.matrix().element(c), oracle, "column {c}");
    }
}

#[test]
fn batched_ntt_launch_count_is_independent_of_batch_size() {
    let session = Session::default();
    let n = 256;
    let space = session.ntt_default(n);
    let expected_launches = n.trailing_zeros() as usize + 1; // stages + normalize
    let q = BigUint::from(space.modulus());
    for batch in [1usize, 4, 16] {
        let data: Vec<u64> = random_values(batch as u64, batch * n, &q)
            .iter()
            .map(|v| v.to_u64().unwrap())
            .collect();
        let mut work = data.clone();
        let stats = space.forward_batch(&mut work);
        assert_eq!(
            stats.launches, expected_launches,
            "batch {batch}: stage launches must not scale with batch size"
        );
        assert_eq!(
            stats.threads,
            batch * (n / 2) * n.trailing_zeros() as usize + batch * n,
            "batch {batch}: one thread per butterfly plus the normalize pass"
        );
        // Batched execution is still the same transform.
        let mut reference = data.clone();
        for transform in reference.chunks_exact_mut(n) {
            space.forward(transform);
        }
        assert_eq!(work, reference, "batch {batch}");
        space.inverse_batch(&mut work);
        assert_eq!(work, data, "batch {batch}: inverse ∘ forward");
    }
}

#[test]
fn session_compiled_conversion_kernels_are_shared_across_plans() {
    let session = Session::default();
    let src = session.rns_with_capacity(96);
    let dst_moduli = RnsContext::with_random_primes(3, 31, 0xabcd)
        .moduli()
        .to_vec();
    let dst = session.rns(&dst_moduli);
    let bc = src.conversion_to(&dst);
    let first = src.conversion_kernels(&bc);
    let second = src.conversion_kernels(&bc);
    assert_eq!(first.len(), dst_moduli.len());
    for (a, b) in first.iter().zip(&second) {
        assert!(
            std::sync::Arc::ptr_eq(a, b),
            "kernels must be shared, not recompiled"
        );
    }
    let stats = session.stats();
    assert_eq!(stats.kernels.misses, dst_moduli.len() as u64);
    assert_eq!(stats.kernels.hits, dst_moduli.len() as u64);
}
